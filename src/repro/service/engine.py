"""The long-lived engine: a supervised, event-driven service loop.

:class:`ServiceEngine` holds one live network (topology, clustering,
backbone, batch router, shared path oracle) and folds a stream of
:class:`~repro.service.events.ServiceEvent` through the incremental
ladder the earlier layers provide:

* ``join`` — :meth:`~repro.net.topology.Topology.with_node`-style
  unit-disk attachment (dead nodes excluded), admission through
  :func:`~repro.core.clustering.admit_nodes`.  A member join keeps the
  whole CDS stage (``dataclasses.replace`` of the backbone) and carries
  the routing layer via
  :meth:`~repro.traffic.router.BatchRouter.inherit_node_add`; a declared
  arrival rebuilds only the backbone stage on an inherited path oracle.
  A member join whose attach links *bridge previously separate
  components* (an earlier arrival landed in a radio hole, a later one
  wires it back) also rebuilds the backbone stage: the graph becomes one
  component, and the head graph needs virtual links across the bridge
  that no replace-the-clustering fast path can supply.  Bridges are
  detected from an incrementally maintained component labeling
  (O(attach) per join; recomputed after edge-removing events).
* ``leave`` — the §3.3 repair ladder with the
  :func:`~repro.maintenance.repair.degraded_repair` floor, router caches
  carried across (splices keep the whole head layer — see the gateway
  splice contract in :mod:`repro.traffic.lifetime`).
* ``move`` / ``link_down`` / ``link_up`` — unit-disk edge deltas through
  :meth:`~repro.net.graph.Graph.with_edge_delta`, backbone rebuilt on a
  delta-seeded path oracle when the cover survives, scoped recluster
  fallback when it does not.
* ``degrade`` — per-link loss overrides folded into the delivery model.
* ``flow`` — a uniform workload routed over the live backbone and
  (when loss is configured) pushed through lossy delivery with retries.

The steady state never re-runs the global clustering algorithm: only a
guard trip or a cover-breaking motion falls back to
``khop_cluster(require_connected=False)``, and both are counted
(``service.rebuild_fallbacks``).  Invariant guards
(:func:`~repro.service.guards.run_guards`) run after structural events;
a violation becomes a structured incident plus that same scoped rebuild
— the loop keeps serving.

Durability is write-ahead: each event is appended to the JSONL log
*before* it is applied, and every ``checkpoint_every`` events the full
JSON-serializable state (:meth:`ServiceEngine.state_dict`) is snapshot
atomically.  Replay determinism rests on two properties: (a) the only
RNG draws happen in ``flow`` handlers, in a fixed order, from one
checkpointed PCG64 stream; (b) every live backbone equals
``build_backbone`` of its clustering restricted to ``n_struct`` (the
node count at the last structural change) with the current clustering
spliced back in — which is exactly how :meth:`ServiceEngine.from_state`
reconstructs it.
"""

from __future__ import annotations

import dataclasses
import json
import zlib
from collections import Counter
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Optional, Sequence, Union

import numpy as np

from ..core.clustering import (
    Clustering,
    admit_nodes,
    khop_cluster,
    resolve_head_conflicts,
)
from ..core.pipeline import _LOCALIZED, BackboneResult, build_backbone
from ..errors import InvalidParameterError, ValidationError
from ..maintenance.repair import (
    clustering_still_valid,
    degraded_repair,
    delta_path_oracle,
)
from ..net.graph import Graph
from ..net.paths import PathOracle
from ..net.topology import Topology, random_topology
from ..obs import counter as obs_counter
from ..obs import publish_counters, span
from ..traffic.router import BatchRouter
from ..traffic.workloads import make_workload
from ..types import Edge, normalize_edge
from .checkpoint import append_event, write_checkpoint
from .events import ServiceEvent, seeded_schedule
from .guards import GuardIncident, run_guards

__all__ = [
    "ServiceConfig",
    "ServiceEngine",
    "ServiceReport",
    "run_service",
    "INCIDENT_LOG_NAME",
]

#: Structured incident records land here, next to the event log.
INCIDENT_LOG_NAME = "incidents.jsonl"

#: Event kinds that can change the graph/backbone (guards run after these).
_STRUCTURAL_KINDS = frozenset(("join", "leave", "move", "link_down", "link_up"))


@dataclass(frozen=True)
class ServiceConfig:
    """Immutable knobs for one service run (recorded in every checkpoint).

    Attributes:
        n: initial node count (the seeded unit-disk deployment).
        degree: target average degree of the initial topology.
        k: cluster radius.
        algorithm: backbone algorithm; must be localized (the repair
            ladder's degraded floor and partition-tolerant rebuilds rule
            out G-MST).
        backend: distance-oracle backend pinned on every graph.
        seed: master seed — initial topology, event schedules, and the
            engine's runtime RNG stream all derive from it.
        base_loss: uniform per-hop loss under which flows are delivered
            (0 disables the lossy-delivery stage entirely).
        max_attempts: per-flow retry budget for lossy delivery.
        checkpoint_every: snapshot cadence in events (0 disables).
        guard_every: run invariant guards after every Nth structural
            event (0 disables; 1 = always).
        fsync: fsync each event-log append (power-loss durability; the
            kill -9 guarantee holds either way).
    """

    n: int = 100
    degree: float = 8.0
    k: int = 2
    algorithm: str = "NC-Mesh"
    backend: str = "lazy"
    seed: int = 7
    base_loss: float = 0.0
    max_attempts: int = 3
    checkpoint_every: int = 50
    guard_every: int = 1
    fsync: bool = True

    def __post_init__(self) -> None:
        if self.algorithm not in _LOCALIZED:
            raise InvalidParameterError(
                f"the service needs a localized algorithm, got "
                f"{self.algorithm!r} (known: {sorted(_LOCALIZED)})"
            )
        if self.n < 2:
            raise InvalidParameterError(f"need n >= 2, got {self.n}")
        if self.k < 1:
            raise InvalidParameterError(f"need k >= 1, got {self.k}")
        if not 0.0 <= self.base_loss < 1.0:
            raise InvalidParameterError(
                f"base_loss must be in [0, 1), got {self.base_loss}"
            )

    def to_record(self) -> dict[str, Any]:
        """JSON-serializable knob record (checkpoint ``knobs`` section)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_record(cls, rec: dict[str, Any]) -> "ServiceConfig":
        """Inverse of :meth:`to_record` (exact round-trip)."""
        fields = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in rec.items() if k in fields})


@dataclass(frozen=True)
class ServiceReport:
    """Summary of a finished (or resumed-and-finished) service run."""

    events_applied: int
    final_n: int
    alive: int
    heads: int
    joins_admitted: int
    heads_declared: int
    repairs: int
    backbone_rebuilds: int
    rebuild_fallbacks: int
    guard_trips: int
    khop_reruns: int
    checkpoints: int
    flows_routed: int
    mean_delivered: float

    def render(self) -> str:
        """Human-readable multi-line summary for the CLI."""
        lines = [
            f"events applied       {self.events_applied}",
            f"nodes (alive/total)  {self.alive}/{self.final_n}",
            f"clusterheads         {self.heads}",
            f"joins admitted       {self.joins_admitted}"
            f" (+{self.heads_declared} declared)",
            f"repairs              {self.repairs}",
            f"backbone rebuilds    {self.backbone_rebuilds}",
            f"rebuild fallbacks    {self.rebuild_fallbacks}"
            f" (guard trips {self.guard_trips})",
            f"khop re-runs         {self.khop_reruns}",
            f"checkpoints          {self.checkpoints}",
            f"flows routed         {self.flows_routed}"
            f" (mean delivered {self.mean_delivered:.3f})",
        ]
        return "\n".join(lines)


def _initial_topology(config: ServiceConfig) -> Topology:
    """The seeded initial deployment (pure function of the config)."""
    topo = random_topology(config.n, degree=config.degree, seed=config.seed)
    topo.graph.use_distance_backend(config.backend)
    return topo


class ServiceEngine:
    """One live network under a supervised event loop.

    Build fresh from a :class:`ServiceConfig` (optionally with a
    durability ``directory``), or restore via :meth:`from_state` /
    :func:`~repro.service.recovery.recover`.  Feed events through
    :meth:`apply`; read the world back through ``graph`` /
    ``clustering`` / ``backbone`` / ``router`` and :meth:`report`.
    """

    def __init__(
        self,
        config: ServiceConfig,
        directory: Union[str, Path, None] = None,
        *,
        _defer: bool = False,
    ) -> None:
        self.config = config
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self.dead: set[int] = set()
        self.loss: dict[Edge, float] = {}
        self.cursor = 0
        self.history: list[dict[str, Any]] = []
        self.incidents: list[GuardIncident] = []
        self.counts: Counter[str] = Counter()
        #: Cached per-node component labels (None = recompute on demand).
        self._comp_labels: Optional[np.ndarray] = None
        self.rng = np.random.default_rng(config.seed)
        if _defer:  # from_state fills the live structures itself
            return
        self.topology = _initial_topology(config)
        self.clustering = khop_cluster(
            self.topology.graph, config.k, engine="batched"
        )
        self.paths = PathOracle(self.topology.graph)
        self.backbone = build_backbone(
            self.clustering, config.algorithm, oracle=self.paths
        )
        self.router = BatchRouter(self.backbone, oracle=self.paths)
        self.n_struct = self.topology.graph.n

    # ----------------------------------------------------------------- #
    # views
    # ----------------------------------------------------------------- #

    @property
    def graph(self) -> Graph:
        """The live connectivity graph."""
        return self.topology.graph

    @property
    def alive(self) -> int:
        """Number of nodes not yet departed."""
        return self.graph.n - len(self.dead)

    # ----------------------------------------------------------------- #
    # the event loop
    # ----------------------------------------------------------------- #

    def apply(
        self, event: ServiceEvent, *, log: bool = True, checkpoint: bool = True
    ) -> None:
        """Fold one event into the live state (write-ahead when durable).

        The event is re-stamped with the engine's cursor, appended to the
        event log *before* any state changes (``log=False`` during
        replay — the log already holds it), dispatched, guarded, and
        possibly checkpointed.  Recoverable trouble (a guard trip, a
        cover-breaking motion) degrades to a scoped rebuild; it never
        raises out of here.
        """
        event = event.stamped(self.cursor)
        if log and self.directory is not None:
            append_event(self.directory, event, fsync=self.config.fsync)
        with span("service.event", kind=event.kind, seq=event.seq):
            handler = getattr(self, f"_handle_{event.kind}")
            handler(event)
        self.cursor += 1
        self.counts["events"] += 1
        obs_counter("service.events_applied").add()
        if event.kind in _STRUCTURAL_KINDS:
            self.counts["structural"] += 1
            every = self.config.guard_every
            if every > 0 and self.counts["structural"] % every == 0:
                self._run_guards(event)
        every = self.config.checkpoint_every
        if (
            checkpoint
            and self.directory is not None
            and every > 0
            and self.cursor % every == 0
        ):
            self.checkpoint()

    def apply_all(
        self, events: Sequence[ServiceEvent], *, log: bool = True
    ) -> None:
        """Apply a batch in order (the demo/bench driver)."""
        for ev in events:
            self.apply(ev, log=log)

    # ----------------------------------------------------------------- #
    # handlers
    # ----------------------------------------------------------------- #

    def _handle_join(self, event: ServiceEvent) -> None:
        assert event.position is not None  # ServiceEvent validated
        g = self.graph
        x = g.n
        pos = np.asarray(event.position, dtype=np.float64).reshape(2)
        # Same float expression as unit_disk_edges / Topology.with_node,
        # minus departed nodes: an arrival never wires to a dead radio.
        diff = self.topology.positions - pos
        within = np.sqrt(np.einsum("ij,ij->i", diff, diff))
        within = within <= self.topology.radius
        attach = [
            (int(u), x)
            for u in np.flatnonzero(within)
            if int(u) not in self.dead
        ]
        labels = self._component_labels()
        attach_roots = {int(labels[u]) for u, _ in attach}
        # Oracle caches are deliberately dropped: carrying them costs an
        # O(cache) relax at every arrival, while the next flow batch
        # rebuilds exactly the rows it needs in one sweep.
        g2 = g.with_nodes(1, attach, inherit_oracles=False)
        self.topology = replace(
            self.topology,
            graph=g2,
            positions=np.concatenate([self.topology.positions, pos[None, :]]),
        )
        self._extend_component_labels(labels, attach_roots)
        c2 = admit_nodes(self.clustering, g2)
        self.clustering = c2
        is_member = x not in set(c2.heads)
        if is_member and len(attach_roots) <= 1:
            # Member join: the CDS stage is untouched, so the live router
            # rebinds in place and keeps the whole head-routing layer
            # verbatim — O(1) where copy-and-verify inheritance would pay
            # O(cache) at every one of thousands of arrivals.  The leg
            # oracle starts fresh: legs re-resolve canonically on demand.
            backbone2 = dataclasses.replace(self.backbone, clustering=c2)
            paths2 = PathOracle(g2)
            self.router.admit_member(backbone2, paths2)
            router2 = self.router
            self.counts["joins_admitted"] += 1
            obs_counter("service.joins_admitted").add()
        else:
            # Declared arrival (the head set changed) — or a member join
            # whose attach links bridge previously separate components,
            # where the head graph needs virtual links across the bridge
            # that reusing the old link set cannot supply.  Either way
            # the backbone stage rebuilds on a node-add-inherited path
            # oracle, head-graph trees carried where the link
            # certificates hold.
            paths2 = PathOracle(g2)
            paths2.inherit_node_add(self.paths)
            built = self._build_with_merge(c2, paths2, event)
            if built is None:
                return
            backbone2, c2 = built
            self.clustering = c2
            router2 = BatchRouter(backbone2, oracle=paths2)
            router2.router.inherit_from(self.router.router)
            self.n_struct = g2.n
            self.counts["backbone_rebuilds"] += 1
            obs_counter("service.backbone_rebuilds").add()
            if is_member:
                self.counts["joins_admitted"] += 1
                self.counts["component_bridges"] += 1
                obs_counter("service.joins_admitted").add()
                obs_counter("service.component_bridges").add()
            else:
                self.counts["heads_declared"] += 1
                obs_counter("service.heads_declared").add()
        self.backbone = backbone2
        self.router = router2
        self.paths = paths2

    def _handle_leave(self, event: ServiceEvent) -> None:
        x = event.node
        assert x is not None  # ServiceEvent validated
        if not (0 <= x < self.graph.n) or x in self.dead:
            self.counts["skipped"] += 1  # already gone: idempotent no-op
            return
        self.dead.add(x)
        try:
            outcome = degraded_repair(self.backbone, x)
        except ValidationError as exc:
            self._incident(
                GuardIncident("backbone", str(exc), event.seq, event.kind)
            )
            self._scoped_rebuild(event)
            return
        self.counts["repairs"] += 1
        self.counts[f"repair.{outcome.action}"] += 1
        if outcome.action == "degraded":
            self.counts["khop_reruns"] += 1
        backbone2 = outcome.backbone
        if backbone2 is None:  # pragma: no cover - degraded floor covers it
            self._scoped_rebuild(event)
            return
        g2 = backbone2.clustering.graph
        router2 = BatchRouter(backbone2)
        # A splice reuses the old head layer wholesale — scope_heads would
        # only invalidate trees the per-tree link certificates already
        # re-verify (see the gateway-splice walk-identity contract).
        changed = frozenset() if outcome.spliced else outcome.scope_heads
        stats = router2.inherit_from(self.router, x, changed)
        publish_counters("service.leave_inherit", stats)
        self.topology = replace(self.topology, graph=g2)
        self._comp_labels = None
        self.clustering = backbone2.clustering
        self.backbone = backbone2
        self.router = router2
        self.paths = router2.path_oracle
        self.n_struct = g2.n

    def _handle_move(self, event: ServiceEvent) -> None:
        x = event.node
        assert x is not None and event.position is not None
        if not (0 <= x < self.graph.n) or x in self.dead:
            self.counts["skipped"] += 1
            return
        pos = np.asarray(event.position, dtype=np.float64).reshape(2)
        positions2 = self.topology.positions.copy()
        positions2[x] = pos
        diff = positions2 - pos
        dist = np.sqrt(np.einsum("ij,ij->i", diff, diff))
        within = dist <= self.topology.radius
        desired = {
            normalize_edge(x, int(u))
            for u in np.flatnonzero(within)
            if int(u) != x and int(u) not in self.dead
        }
        current = {normalize_edge(x, v) for v in self.graph.neighbors(x)}
        added = desired - current
        removed = current - desired
        self.topology = replace(self.topology, positions=positions2)
        self._apply_edge_delta(added, removed, event)

    def _handle_link_down(self, event: ServiceEvent) -> None:
        removed = self._present_edges(event.edges, present=True)
        self._apply_edge_delta(set(), removed, event)

    def _handle_link_up(self, event: ServiceEvent) -> None:
        added = self._present_edges(event.edges, present=False)
        self._apply_edge_delta(added, set(), event)

    def _handle_degrade(self, event: ServiceEvent) -> None:
        for e in event.edges:
            if event.loss > 0.0:
                self.loss[e] = event.loss
            else:
                self.loss.pop(e, None)
        self.counts["degrades"] += 1

    def _handle_flow(self, event: ServiceEvent) -> None:
        g = self.graph
        # Two draws per flow event, always, in this order — the stream
        # position is part of the replay contract.
        wl_seed = int(self.rng.integers(0, 2**31 - 1))
        dl_seed = int(self.rng.integers(0, 2**31 - 1))
        workload = make_workload("uniform", g.n, event.flows, seed=wl_seed)
        labels = self._component_labels()
        ok = labels[workload.sources] == labels[workload.targets]
        if self.dead:
            alive_mask = np.ones(g.n, dtype=bool)
            alive_mask[sorted(self.dead)] = False
            ok &= alive_mask[workload.sources]
            ok &= alive_mask[workload.targets]
        sub = replace(
            workload,
            sources=workload.sources[ok],
            targets=workload.targets[ok],
            demands=workload.demands[ok],
        )
        delivered = 1.0
        walks_crc = 0
        if sub.num_flows:
            routed = self.router.route_flows(sub, with_shortest=False)
            walks_crc = zlib.crc32(repr(routed.walks).encode())
            if self.loss or self.config.base_loss > 0.0:
                # Runtime import: faults.delivery imports traffic.router
                # at module level, so the service pulls it lazily too.
                from ..faults.delivery import LossModel, deliver

                model = LossModel.from_overrides(
                    g.n, dict(self.loss), base_loss=self.config.base_loss
                )
                delivery = deliver(
                    routed,
                    model,
                    seed=dl_seed,
                    max_attempts=self.config.max_attempts,
                )
                delivered = routed.with_delivery(delivery).delivered_fraction()
        self.history.append(
            {
                "seq": self.cursor,
                "flows": int(sub.num_flows),
                "delivered": float(delivered),
                "walks_crc": int(walks_crc),
            }
        )
        self.counts["flows_routed"] += int(sub.num_flows)
        obs_counter("service.flows_routed").add(int(sub.num_flows))

    # ----------------------------------------------------------------- #
    # structural helpers
    # ----------------------------------------------------------------- #

    def _component_labels(self) -> np.ndarray:
        """Per-node connected-component labels of the live graph, cached.

        Joins maintain the cache incrementally (see
        :meth:`_extend_component_labels`); edge-removing events drop it
        and the next reader recomputes.  Only the *partition* is
        meaningful — label values may differ between an incrementally
        maintained cache and a fresh recompute, and nothing observable
        (flow filtering, bridge detection) depends on the values, which
        keeps replay deterministic.
        """
        labels = self._comp_labels
        if labels is None or len(labels) != self.graph.n:
            labels = np.full(self.graph.n, -1, dtype=np.int64)
            for i, comp in enumerate(self.graph.connected_components()):
                labels[list(comp)] = i
            self._comp_labels = labels
        return labels

    def _extend_component_labels(
        self, labels: np.ndarray, attach_roots: set[int]
    ) -> None:
        """Fold one arrival into the pre-join ``labels`` cache."""
        if attach_roots:
            new = min(attach_roots)
        else:  # isolated arrival: its own fresh component
            new = int(labels.max()) + 1 if labels.size else 0
        labels2 = np.append(labels, new)
        if len(attach_roots) > 1:  # the arrival merged components
            labels2[np.isin(labels2, list(attach_roots - {new}))] = new
        self._comp_labels = labels2

    def _present_edges(
        self, edges: tuple[Edge, ...], *, present: bool
    ) -> set[Edge]:
        """Filter a link event's edges to applicable ones."""
        g = self.graph
        have = set(g.edges)
        out: set[Edge] = set()
        for u, v in edges:
            if not (0 <= u < g.n and 0 <= v < g.n):
                continue
            if u in self.dead or v in self.dead:
                continue
            e = normalize_edge(u, v)
            if (e in have) == present:
                out.add(e)
        return out

    def _apply_edge_delta(
        self, added: set[Edge], removed: set[Edge], event: ServiceEvent
    ) -> None:
        """Fold an edge delta through the incremental backbone path."""
        g = self.graph
        g2 = g.with_edge_delta(added, removed)
        if g2 is g:
            self.counts["skipped"] += 1
            return
        self.topology = replace(self.topology, graph=g2)
        self._comp_labels = None
        c2 = dataclasses.replace(self.clustering, graph=g2)
        self.clustering = c2
        if not clustering_still_valid(c2, g2, exclude=self.dead):
            self._incident(
                GuardIncident(
                    "cover",
                    "edge delta broke the k-hop cover; scoped recluster",
                    event.seq,
                    event.kind,
                )
            )
            self._scoped_rebuild(event)
            return
        touched = {u for e in added | removed for u in e}
        paths2 = delta_path_oracle(g2, self.paths, touched)
        built = self._build_with_merge(c2, paths2, event)
        if built is None:
            return
        backbone2, c2 = built
        self.clustering = c2
        router2 = BatchRouter(backbone2, oracle=paths2)
        stats = router2.inherit_edge_delta(self.router, touched)
        publish_counters("service.delta_inherit", stats)
        self.backbone = backbone2
        self.router = router2
        self.paths = paths2
        self.n_struct = g2.n
        self.counts["backbone_rebuilds"] += 1
        obs_counter("service.backbone_rebuilds").add()

    def _build_with_merge(
        self, c: Clustering, oracle: PathOracle, event: ServiceEvent
    ) -> Optional[tuple[BackboneResult, Clustering]]:
        """``build_backbone`` with the head-merge retry.

        Arrivals and edge additions shorten distances, so two heads can
        drift within ``k`` of each other — the backbone stage then
        rejects the clustering ("virtual link passes through a
        clusterhead").  The local response is
        :func:`~repro.core.clustering.resolve_head_conflicts` (demote
        the newer of the pair, re-admit its members) and one retry; only
        if even the merged clustering fails does this degrade to the
        scoped-rebuild fallback, logging the incident.  Returns None
        when the fallback already installed the new state.
        """
        try:
            return build_backbone(c, self.config.algorithm, oracle=oracle), c
        except ValidationError as exc:
            merged = resolve_head_conflicts(c)
            if merged is not c:
                try:
                    result = build_backbone(
                        merged, self.config.algorithm, oracle=oracle
                    )
                except ValidationError as exc2:
                    exc = exc2
                else:
                    self.counts["head_merges"] += 1
                    obs_counter("service.head_merges").add()
                    return result, merged
            self._incident(
                GuardIncident("backbone", str(exc), event.seq, event.kind)
            )
            self._scoped_rebuild(event)
            return None

    def _scoped_rebuild(self, event: ServiceEvent) -> None:
        """The guard/fallback floor: recluster survivors, keep serving."""
        from ..maintenance.repair import _strip_nodes

        g = self.graph
        with span("service.rebuild_fallback", n=g.n, seq=event.seq):
            fresh = khop_cluster(
                g,
                self.config.k,
                priority=self.clustering.priority_name,
                membership=self.clustering.membership_name,
                require_connected=False,
            )
            stripped = _strip_nodes(fresh, g, set(self.dead))
            paths = PathOracle(g)
            backbone = build_backbone(
                stripped, self.config.algorithm, oracle=paths
            )
            self.clustering = stripped
            self.backbone = backbone
            self.paths = paths
            self.router = BatchRouter(backbone, oracle=paths)
            self.n_struct = g.n
        self.counts["rebuild_fallbacks"] += 1
        self.counts["khop_reruns"] += 1
        obs_counter("service.rebuild_fallbacks").add()

    def _run_guards(self, event: ServiceEvent) -> None:
        incidents = run_guards(
            self.graph,
            self.clustering,
            self.backbone,
            self.dead,
            seq=event.seq,
            kind=event.kind,
        )
        if not incidents:
            return
        for inc in incidents:
            self._incident(inc)
        self._scoped_rebuild(event)

    def _incident(self, incident: GuardIncident) -> None:
        self.incidents.append(incident)
        self.counts["guard_trips"] += 1
        obs_counter("service.guard_trips").add()
        obs_counter(f"service.guard_trips.{incident.guard}").add()
        if self.directory is not None:
            path = self.directory / INCIDENT_LOG_NAME
            with open(path, "a", encoding="utf-8") as fh:
                fh.write(json.dumps(incident.to_record(), sort_keys=True) + "\n")

    # ----------------------------------------------------------------- #
    # durability
    # ----------------------------------------------------------------- #

    def state_dict(self) -> dict[str, Any]:
        """The full JSON-serializable engine state (checkpoint payload)."""
        g = self.graph
        return {
            "n": g.n,
            "edges": [[int(u), int(v)] for u, v in g.edges],
            "positions": [
                [float(a), float(b)] for a, b in self.topology.positions
            ],
            "radius": float(self.topology.radius),
            "area": [float(self.topology.area[0]), float(self.topology.area[1])],
            "attempts": int(self.topology.attempts),
            "n_struct": int(self.n_struct),
            "dead": sorted(self.dead),
            "head_of": [int(h) for h in self.clustering.head_of],
            "heads": [int(h) for h in self.clustering.heads],
            "rounds": int(self.clustering.rounds),
            "priority": self.clustering.priority_name,
            "membership": self.clustering.membership_name,
            "loss": [
                [int(u), int(v), float(p)]
                for (u, v), p in sorted(self.loss.items())
            ],
            "rng": self.rng.bit_generator.state,
            "cursor": int(self.cursor),
            "history": list(self.history),
            "incidents": [inc.to_record() for inc in self.incidents],
            "counts": dict(self.counts),
        }

    def checkpoint(self) -> Path:
        """Write the atomic snapshot for the current cursor."""
        if self.directory is None:
            raise InvalidParameterError(
                "checkpointing needs a service directory"
            )
        with span("service.checkpoint", seq=self.cursor):
            path = write_checkpoint(
                self.directory,
                self.cursor,
                self.state_dict(),
                knobs=self.config.to_record(),
            )
        nbytes = path.stat().st_size
        self.counts["checkpoints"] += 1
        obs_counter("service.checkpoints").add()
        obs_counter("service.checkpoint_bytes").add(int(nbytes))
        return path

    @classmethod
    def from_state(
        cls,
        config: ServiceConfig,
        state: dict[str, Any],
        directory: Union[str, Path, None] = None,
    ) -> "ServiceEngine":
        """Reconstruct a live engine from a checkpoint's ``state`` dict.

        The backbone is rebuilt as ``build_backbone`` of the clustering
        restricted to ``n_struct`` (the node count at the last structural
        change) with the full clustering spliced back in — exactly the
        state the live engine carried, because every node admitted past
        ``n_struct`` was a member join that left the CDS stage untouched.
        """
        engine = cls(config, directory, _defer=True)
        n = int(state["n"])
        edges = [normalize_edge(int(u), int(v)) for u, v in state["edges"]]
        g = Graph(n, edges)
        g.use_distance_backend(config.backend)
        positions = np.asarray(state["positions"], dtype=np.float64)
        engine.topology = Topology(
            graph=g,
            positions=positions,
            radius=float(state["radius"]),
            area=(float(state["area"][0]), float(state["area"][1])),
            seed=config.seed,
            attempts=int(state["attempts"]),
        )
        clustering = Clustering(
            graph=g,
            k=config.k,
            head_of=tuple(int(h) for h in state["head_of"]),
            heads=tuple(int(h) for h in state["heads"]),
            rounds=int(state["rounds"]),
            priority_name=state["priority"],
            membership_name=state["membership"],
        )
        engine.clustering = clustering
        n_struct = int(state["n_struct"])
        engine.n_struct = n_struct
        if n_struct == n:
            struct_clustering = clustering
            struct_graph = g
        else:
            struct_edges = [e for e in edges if e[1] < n_struct]
            struct_graph = Graph(n_struct, struct_edges)
            struct_graph.use_distance_backend(config.backend)
            struct_clustering = Clustering(
                graph=struct_graph,
                k=config.k,
                head_of=clustering.head_of[:n_struct],
                heads=tuple(h for h in clustering.heads if h < n_struct),
                rounds=clustering.rounds,
                priority_name=clustering.priority_name,
                membership_name=clustering.membership_name,
            )
        backbone = build_backbone(struct_clustering, config.algorithm)
        if struct_clustering is not clustering:
            backbone = dataclasses.replace(backbone, clustering=clustering)
        engine.backbone = backbone
        engine.paths = PathOracle(g)
        engine.router = BatchRouter(backbone, oracle=engine.paths)
        engine.dead = {int(u) for u in state["dead"]}
        engine.loss = {
            normalize_edge(int(u), int(v)): float(p)
            for u, v, p in state["loss"]
        }
        engine.rng = np.random.default_rng(config.seed)
        engine.rng.bit_generator.state = state["rng"]
        engine.cursor = int(state["cursor"])
        engine.history = list(state["history"])
        engine.incidents = [
            GuardIncident(
                guard=rec["guard"],
                message=rec["message"],
                seq=int(rec["seq"]),
                kind=rec["kind"],
            )
            for rec in state.get("incidents", [])
        ]
        engine.counts = Counter(
            {str(k): int(v) for k, v in state.get("counts", {}).items()}
        )
        return engine

    # ----------------------------------------------------------------- #
    # identity & reporting
    # ----------------------------------------------------------------- #

    def fingerprint(self) -> dict[str, Any]:
        """A compact identity of the observable state.

        Two engines that processed the same event prefix — whether
        straight through or via kill/restore/replay — must produce equal
        fingerprints: same graph, cover, backbone, loss map, traffic
        history (walk digests included), and RNG stream position.
        """
        g = self.graph
        return {
            "cursor": self.cursor,
            "n": g.n,
            "n_struct": self.n_struct,
            "edges_crc": zlib.crc32(repr(g.edges).encode()),
            "positions_crc": zlib.crc32(
                repr(self.topology.positions.tolist()).encode()
            ),
            "head_of": self.clustering.head_of,
            "heads": self.clustering.heads,
            "gateways": tuple(sorted(self.backbone.gateways)),
            "links_crc": zlib.crc32(
                repr(sorted(self.backbone.selected_links)).encode()
            ),
            "dead": tuple(sorted(self.dead)),
            "loss": tuple(sorted(self.loss.items())),
            "rng": repr(self.rng.bit_generator.state),
            "history": tuple(
                tuple(sorted(h.items())) for h in self.history
            ),
        }

    def report(self) -> ServiceReport:
        """Summarize what the loop has done so far."""
        delivered = [h["delivered"] for h in self.history if h["flows"]]
        return ServiceReport(
            events_applied=self.cursor,
            final_n=self.graph.n,
            alive=self.alive,
            heads=len(self.clustering.heads),
            joins_admitted=self.counts["joins_admitted"],
            heads_declared=self.counts["heads_declared"],
            repairs=self.counts["repairs"],
            backbone_rebuilds=self.counts["backbone_rebuilds"],
            rebuild_fallbacks=self.counts["rebuild_fallbacks"],
            guard_trips=self.counts["guard_trips"],
            khop_reruns=self.counts["khop_reruns"],
            checkpoints=self.counts["checkpoints"],
            flows_routed=self.counts["flows_routed"],
            mean_delivered=(
                float(np.mean(delivered)) if delivered else 1.0
            ),
        )


def run_service(
    config: ServiceConfig,
    *,
    events: int,
    directory: Union[str, Path, None] = None,
    weights: Optional[dict[str, float]] = None,
    flows_per_batch: int = 50,
    resume: bool = False,
) -> tuple[ServiceEngine, ServiceReport]:
    """Drive one seeded service run end to end (CLI / bench / CI entry).

    Generates the deterministic schedule from the config's seed, builds
    (or, with ``resume=True`` on a directory holding durable state,
    recovers) the engine, and applies the remaining events.  The
    schedule is a pure function of the config, so a resumed run
    continues exactly where the killed one stopped.
    """
    schedule = seeded_schedule(
        _initial_topology(config),
        events=events,
        seed=config.seed,
        weights=weights,
        flows_per_batch=flows_per_batch,
    )
    engine: Optional[ServiceEngine] = None
    if resume and directory is not None:
        from .recovery import recover

        engine = recover(directory, config=config)
    if engine is None:
        engine = ServiceEngine(config, directory)
    engine.apply_all(schedule[engine.cursor :])
    return engine, engine.report()
