"""The service's typed event model and seeded schedule generation.

A :class:`ServiceEvent` is one unit of work for the long-lived engine:
an arrival (``join``, carrying a deployment position), a departure
(``leave``), motion (``move``), a manual link perturbation
(``link_down``/``link_up``), a per-link loss degradation (``degrade``),
or a traffic batch (``flow``).  Events are values with an exact JSON
round-trip (:meth:`ServiceEvent.to_record` /
:meth:`ServiceEvent.from_record`) — the append-only event log and the
replay recovery path depend on the round-trip being lossless.

Two producers feed the same stream:

* :func:`seeded_schedule` — a deterministic, seed-reproducible mix of
  all kinds (the growth demo's driver: arrival-heavy under continuous
  traffic); identical seeds yield identical schedules bit-for-bit.
* :func:`events_from_fault_plan` — folds a PR-7
  :class:`~repro.faults.plan.FaultPlan` into service events (crash
  becomes leave, flap/jam become link events, degrade carries over), so
  chaos campaigns compose with the service loop.

Events carry *intent*, not compiled deltas: a join's concrete edges are
derived at apply time from the engine's current positions (unit-disk
rule), which keeps the log replayable from any checkpoint.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Iterator, Optional, Sequence

import numpy as np

from ..errors import InvalidParameterError
from ..faults.plan import FaultPlan
from ..net.topology import Topology
from ..types import Edge, normalize_edge

__all__ = [
    "SERVICE_EVENT_KINDS",
    "ServiceEvent",
    "seeded_schedule",
    "events_from_fault_plan",
    "interleave",
]

#: Recognized service event kinds.
SERVICE_EVENT_KINDS: tuple[str, ...] = (
    "join",
    "leave",
    "move",
    "link_down",
    "link_up",
    "degrade",
    "flow",
)


@dataclass(frozen=True)
class ServiceEvent:
    """One unit of work for the service loop.

    Attributes:
        seq: position in the event log (0-based; the engine re-stamps on
            apply, so producers may leave it at 0).
        kind: one of :data:`SERVICE_EVENT_KINDS`.
        node: subject node for ``leave``/``move``.
        position: deployment/destination coordinates for
            ``join``/``move``.
        edges: affected links for ``link_down``/``link_up``/``degrade``.
        loss: per-link loss probability for ``degrade``.
        flows: batch size for ``flow`` events.
    """

    seq: int
    kind: str
    node: Optional[int] = None
    position: Optional[tuple[float, float]] = None
    edges: tuple[Edge, ...] = ()
    loss: float = 0.0
    flows: int = 0

    def __post_init__(self) -> None:
        if self.kind not in SERVICE_EVENT_KINDS:
            raise InvalidParameterError(f"unknown service event {self.kind!r}")
        if self.seq < 0:
            raise InvalidParameterError(f"seq must be >= 0, got {self.seq}")
        if self.kind in ("join", "move") and self.position is None:
            raise InvalidParameterError(f"{self.kind} event needs a position")
        if self.kind in ("leave", "move") and self.node is None:
            raise InvalidParameterError(f"{self.kind} event needs a node")
        if not 0.0 <= self.loss <= 1.0:
            raise InvalidParameterError(f"loss must be in [0, 1], got {self.loss}")
        if self.kind == "flow" and self.flows < 1:
            raise InvalidParameterError("flow event needs flows >= 1")

    def to_record(self) -> dict[str, Any]:
        """A compact JSON-serializable record (omits unset fields)."""
        rec: dict[str, Any] = {"seq": self.seq, "kind": self.kind}
        if self.node is not None:
            rec["node"] = self.node
        if self.position is not None:
            rec["position"] = [float(self.position[0]), float(self.position[1])]
        if self.edges:
            rec["edges"] = [[int(u), int(v)] for u, v in self.edges]
        if self.loss:
            rec["loss"] = self.loss
        if self.flows:
            rec["flows"] = self.flows
        return rec

    @classmethod
    def from_record(cls, rec: dict[str, Any]) -> "ServiceEvent":
        """Inverse of :meth:`to_record` (exact round-trip)."""
        pos = rec.get("position")
        return cls(
            seq=int(rec["seq"]),
            kind=str(rec["kind"]),
            node=rec.get("node"),
            position=(float(pos[0]), float(pos[1])) if pos is not None else None,
            edges=tuple(
                normalize_edge(int(u), int(v)) for u, v in rec.get("edges", ())
            ),
            loss=float(rec.get("loss", 0.0)),
            flows=int(rec.get("flows", 0)),
        )

    def stamped(self, seq: int) -> "ServiceEvent":
        """Copy with ``seq`` set (the engine's log-position stamp)."""
        return replace(self, seq=seq)


def seeded_schedule(
    topology: Topology,
    *,
    events: int,
    seed: int,
    weights: Optional[dict[str, float]] = None,
    flows_per_batch: int = 50,
    loss_range: tuple[float, float] = (0.05, 0.4),
) -> tuple[ServiceEvent, ...]:
    """A deterministic mixed event schedule for the service demo.

    Draws ``events`` decisions from one RNG stream, so the whole
    schedule is a pure function of ``seed``.  Default weights are
    arrival-heavy with continuous traffic — the growth-under-traffic
    shape the service benchmark drives.  Join positions are uniform in
    the deployment area; moves re-place an existing node the same way;
    leaves and link flaps pick uniformly among the *initially known*
    nodes/links (the generator tracks arrivals so late events can also
    target grown nodes, but never nodes it already removed).

    Flap recovery (``link_up``) rides two events after its ``link_down``
    when the horizon allows, mirroring
    :func:`~repro.faults.plan.random_campaign`.
    """
    if events < 0:
        raise InvalidParameterError(f"events must be >= 0, got {events}")
    kind_weights = {
        "join": 0.35,
        "flow": 0.35,
        "move": 0.1,
        "leave": 0.05,
        "link_down": 0.1,
        "degrade": 0.05,
    }
    if weights is not None:
        unknown = set(weights) - set(kind_weights)
        if unknown:
            raise InvalidParameterError(f"unknown schedule kinds {unknown}")
        kind_weights.update(weights)
    kinds = sorted(k for k, w in kind_weights.items() if w > 0)
    probs = np.asarray([kind_weights[k] for k in kinds], dtype=np.float64)
    probs /= probs.sum()
    rng = np.random.default_rng(seed)
    w, h = topology.area
    area = np.asarray([w, h], dtype=np.float64)
    n = topology.n
    gone: set[int] = set()
    base_edges = list(topology.graph.edges)
    out: list[ServiceEvent] = []
    pending_up: list[tuple[int, Edge]] = []  # (emit at index, edge)
    while len(out) < events:
        due = [e for at, e in pending_up if at <= len(out)]
        if due:
            pending_up = [(at, e) for at, e in pending_up if at > len(out)]
            out.extend(
                ServiceEvent(seq=0, kind="link_up", edges=(e,)) for e in due
            )
            continue
        kind = kinds[int(rng.choice(len(kinds), p=probs))]
        alive = [u for u in range(n) if u not in gone]
        if kind == "leave" and len(alive) <= 4:
            kind = "flow"  # never drain the network dry
        if kind == "join":
            pos = rng.uniform(0.0, 1.0, size=2) * area
            out.append(
                ServiceEvent(
                    seq=0, kind="join", position=(float(pos[0]), float(pos[1]))
                )
            )
            n += 1
        elif kind == "leave":
            x = alive[int(rng.integers(len(alive)))]
            gone.add(x)
            out.append(ServiceEvent(seq=0, kind="leave", node=x))
        elif kind == "move":
            x = alive[int(rng.integers(len(alive)))]
            pos = rng.uniform(0.0, 1.0, size=2) * area
            out.append(
                ServiceEvent(
                    seq=0,
                    kind="move",
                    node=x,
                    position=(float(pos[0]), float(pos[1])),
                )
            )
        elif kind == "link_down":
            if not base_edges:
                continue
            edge = base_edges[int(rng.integers(len(base_edges)))]
            out.append(ServiceEvent(seq=0, kind="link_down", edges=(edge,)))
            pending_up.append((len(out) + 2, edge))
        elif kind == "degrade":
            if not base_edges:
                continue
            edge = base_edges[int(rng.integers(len(base_edges)))]
            lo, hi = loss_range
            out.append(
                ServiceEvent(
                    seq=0,
                    kind="degrade",
                    edges=(edge,),
                    loss=float(rng.uniform(lo, hi)),
                )
            )
        else:  # flow
            out.append(ServiceEvent(seq=0, kind="flow", flows=flows_per_batch))
    return tuple(ev.stamped(i) for i, ev in enumerate(out[:events]))


def events_from_fault_plan(plan: FaultPlan) -> tuple[ServiceEvent, ...]:
    """Fold a :class:`~repro.faults.plan.FaultPlan` into service events.

    Kind mapping: ``crash`` becomes ``leave``; ``join`` becomes a join
    at the fault event's arrival position (the engine re-derives attach
    links from its own positions, so the compiled edge tuple is
    dropped); ``link_down``/``jam`` become ``link_down`` and their
    recoveries ``link_up``; ``degrade`` carries its loss override
    through.  Epoch grouping flattens into log order (events within an
    epoch keep the plan's stable order) — the service loop is
    event-granular, not epoch-granular.
    """
    out: list[ServiceEvent] = []
    for ev in plan.events:
        if ev.kind == "crash":
            if ev.node is None:
                raise InvalidParameterError("crash event without a node")
            out.append(ServiceEvent(seq=0, kind="leave", node=ev.node))
        elif ev.kind == "join":
            if ev.center is None:
                raise InvalidParameterError("join event without a position")
            out.append(
                ServiceEvent(seq=0, kind="join", position=ev.center)
            )
        elif ev.kind in ("link_down", "jam"):
            if ev.edges:
                out.append(
                    ServiceEvent(seq=0, kind="link_down", edges=ev.edges)
                )
        elif ev.kind in ("link_up", "jam_end"):
            if ev.edges:
                out.append(ServiceEvent(seq=0, kind="link_up", edges=ev.edges))
        elif ev.kind == "degrade":
            out.append(
                ServiceEvent(
                    seq=0, kind="degrade", edges=ev.edges, loss=ev.loss
                )
            )
        else:  # pragma: no cover - FaultEvent validates kinds
            raise InvalidParameterError(f"unknown fault kind {ev.kind!r}")
    return tuple(ev.stamped(i) for i, ev in enumerate(out))


def interleave(
    *streams: Sequence[ServiceEvent],
) -> Iterator[ServiceEvent]:
    """Round-robin merge of event streams, re-stamped in merge order."""
    iters = [iter(s) for s in streams]
    seq = 0
    while iters:
        nxt: list[Iterator[ServiceEvent]] = []
        for it in iters:
            try:
                ev = next(it)
            except StopIteration:
                continue
            yield ev.stamped(seq)
            seq += 1
            nxt.append(it)
        iters = nxt
