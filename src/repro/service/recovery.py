"""Restore-and-replay: deterministic recovery from the durable state.

:func:`recover` is the supervisor's restart path.  It loads the newest
valid snapshot (:func:`~repro.service.checkpoint.latest_checkpoint`),
reconstructs a live engine from it
(:meth:`~repro.service.engine.ServiceEngine.from_state`), and replays
the event-log tail — every logged event the killed process applied (or
was about to apply) past the snapshot cursor.  Because

* the log is written ahead of application (a truncated tail line is an
  event that was never applied, and
  :func:`~repro.service.checkpoint.read_events` drops it),
* handlers draw randomness only from the checkpointed PCG64 stream, in
  a fixed per-event order, and
* the restored backbone equals the live one by the ``n_struct``
  reconstruction argument (see :mod:`repro.service.engine`),

the recovered engine is bit-identical to one that was never killed:
same walks, same delivered fractions, same RNG stream position —
:meth:`~repro.service.engine.ServiceEngine.fingerprint` equality is the
tested contract.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Sequence, Union

from ..errors import InvalidParameterError
from ..obs import counter as obs_counter
from ..obs import span
from .checkpoint import latest_checkpoint, read_events
from .engine import ServiceConfig, ServiceEngine
from .events import ServiceEvent

__all__ = ["recover", "replay_events"]


def replay_events(
    engine: ServiceEngine, events: Sequence[ServiceEvent]
) -> int:
    """Re-apply the log tail past the engine's cursor; returns the count.

    Events before the cursor (already inside the restored snapshot) are
    skipped; the rest are applied with logging and checkpointing off —
    the log already holds them, and re-snapshotting mid-replay would
    only churn identical bytes.  A seq gap means the log and snapshot
    disagree (foreign or hand-edited directory) and raises rather than
    silently diverging.
    """
    replayed = 0
    for ev in events:
        if ev.seq < engine.cursor:
            continue
        if ev.seq != engine.cursor:
            raise InvalidParameterError(
                f"event log gap: expected seq {engine.cursor}, got {ev.seq}"
            )
        engine.apply(ev, log=False, checkpoint=False)
        replayed += 1
    return replayed


def recover(
    directory: Union[str, Path],
    *,
    config: Optional[ServiceConfig] = None,
) -> ServiceEngine:
    """Bring a killed service back to its exact pre-kill state.

    Restores the newest valid checkpoint (or starts fresh when none
    exists yet) and replays the event-log tail.  ``config`` defaults to
    the knobs recorded in the checkpoint; for a checkpoint-less
    directory it must be supplied.
    """
    directory = Path(directory)
    snapshot = latest_checkpoint(directory)
    events = read_events(directory)
    with span(
        "service.recover",
        checkpoint=-1 if snapshot is None else snapshot[0],
        logged=len(events),
    ):
        if snapshot is None:
            if config is None:
                raise InvalidParameterError(
                    f"no checkpoint under {directory} and no config given"
                )
            engine = ServiceEngine(config, directory)
        else:
            seq, record = snapshot
            if config is None:
                config = ServiceConfig.from_record(record["knobs"])
            engine = ServiceEngine.from_state(
                config, record["state"], directory
            )
        replayed = replay_events(engine, events)
    obs_counter("service.recoveries").add()
    obs_counter("service.events_replayed").add(replayed)
    return engine
