"""Crash-consistent durability: versioned snapshots + append-only log.

Two artifacts live in the service directory:

* ``events.jsonl`` — the append-only **event log**, one
  :meth:`~repro.service.events.ServiceEvent.to_record` line per event,
  written (flushed, optionally fsynced) *before* the event is applied.
  The log is the source of truth: any state the process held in memory
  when it died is reconstructible as ``checkpoint ⊕ log tail``.
* ``checkpoint-<seq>.json`` — **versioned snapshots** of the engine
  state after ``seq`` events.  Each is written to a temp file in the
  same directory, flushed, fsynced, then atomically renamed into place
  (``os.replace``), so a reader never observes a partial checkpoint: a
  kill mid-write leaves at most an orphaned temp file that
  :func:`latest_checkpoint` ignores.

The snapshot schema follows the :mod:`repro.obs.export` manifest
conventions — ``schema`` tag, creation timestamp, git sha — so every
checkpoint is self-describing.  All formats are JSON; pickle and friends
are banned from durable paths by lint rule R011 (a pickle checkpoint
couples recovery to code layout and silently breaks across versions).

A truncated *last* line in the event log (the classic
killed-mid-append) is tolerated: :func:`read_events` drops it, which is
exactly right — an event that never finished reaching the log was never
applied either.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
import time
from pathlib import Path
from typing import Any, Optional, Union

from ..errors import InvalidParameterError
from ..obs.export import _git_sha
from .events import ServiceEvent

__all__ = [
    "CHECKPOINT_SCHEMA",
    "EVENT_LOG_NAME",
    "append_event",
    "read_events",
    "write_checkpoint",
    "latest_checkpoint",
    "checkpoint_path",
]

#: Format tag written into every checkpoint (bump on breaking changes).
CHECKPOINT_SCHEMA = "repro-khop-checkpoint/1"

#: The append-only event log's file name inside the service directory.
EVENT_LOG_NAME = "events.jsonl"

_CHECKPOINT_RE = re.compile(r"^checkpoint-(\d{8})\.json$")


def checkpoint_path(directory: Union[str, Path], seq: int) -> Path:
    """The snapshot path for event cursor ``seq``."""
    if seq < 0:
        raise InvalidParameterError(f"seq must be >= 0, got {seq}")
    return Path(directory) / f"checkpoint-{seq:08d}.json"


def append_event(
    directory: Union[str, Path], event: ServiceEvent, *, fsync: bool = True
) -> Path:
    """Append one event to the log, durably, *before* it is applied.

    Returns the log path.  ``fsync=False`` trades the power-loss
    guarantee for speed (kill -9 consistency is kept either way — the
    write is a single buffered line and a truncated tail is tolerated).
    """
    path = Path(directory) / EVENT_LOG_NAME
    line = json.dumps(event.to_record(), sort_keys=True)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(line + "\n")
        fh.flush()
        if fsync:
            os.fsync(fh.fileno())
    return path


def read_events(directory: Union[str, Path]) -> list[ServiceEvent]:
    """Parse the event log back, dropping a truncated trailing line."""
    path = Path(directory) / EVENT_LOG_NAME
    if not path.exists():
        return []
    events: list[ServiceEvent] = []
    lines = path.read_text(encoding="utf-8").split("\n")
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError:
            if i >= len(lines) - 2:  # the killed-mid-append tail
                break
            raise
        events.append(ServiceEvent.from_record(rec))
    return events


def write_checkpoint(
    directory: Union[str, Path],
    seq: int,
    state: dict[str, Any],
    *,
    knobs: Optional[dict[str, Any]] = None,
) -> Path:
    """Atomically write the snapshot for event cursor ``seq``.

    ``state`` is the engine's JSON-serializable state dict;
    ``knobs`` the run configuration, recorded manifest-style.  The write
    is temp-file + fsync + ``os.replace``, so concurrent/interrupted
    writers can never expose a partial snapshot under the final name.
    """
    directory = Path(directory)
    target = checkpoint_path(directory, seq)
    record = {
        "schema": CHECKPOINT_SCHEMA,
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "git_sha": _git_sha(),
        "seq": seq,
        "knobs": dict(sorted((knobs or {}).items())),
        "state": state,
    }
    payload = json.dumps(record, sort_keys=True)
    fd, tmp = tempfile.mkstemp(
        prefix=".checkpoint-", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, target)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return target


def latest_checkpoint(
    directory: Union[str, Path],
) -> Optional[tuple[int, dict[str, Any]]]:
    """Load the newest *valid* snapshot as ``(seq, record)``.

    Scans for ``checkpoint-*.json`` names in descending cursor order and
    returns the first that parses and carries the expected schema tag;
    corrupt or foreign files are skipped, orphaned temp files never
    match the name pattern at all.  Returns None when no valid snapshot
    exists (fresh directory — the caller starts from the log alone).
    """
    directory = Path(directory)
    if not directory.is_dir():
        return None
    candidates = sorted(
        (
            (int(m.group(1)), directory / name)
            for name in os.listdir(directory)
            if (m := _CHECKPOINT_RE.match(name))
        ),
        reverse=True,
    )
    for seq, path in candidates:
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            continue
        if record.get("schema") != CHECKPOINT_SCHEMA:
            continue
        if record.get("seq") != seq:
            continue
        return seq, record
    return None
