"""repro.service — the long-lived engine service.

Everything else in the repository answers one-shot questions: build a
topology, cluster it, run an experiment, exit.  This package keeps the
engine *running*: a supervised event loop consumes a stream of
join/leave/move/link/flow events and folds each one through the
incremental machinery the earlier layers already provide —
:meth:`~repro.net.graph.Graph.with_nodes` growth with oracle/path/router
cache inheritance, :func:`~repro.core.clustering.admit_nodes` admission,
the §3.3 repair ladder for departures, edge deltas for motion — so the
service's steady state never re-runs the global clustering algorithm.

The three concerns, one module each:

* :mod:`~repro.service.engine` — the event loop itself
  (:class:`ServiceEngine`), plus the seeded demo runner the CLI and the
  benchmarks drive;
* :mod:`~repro.service.events` — the typed, JSON-round-trippable event
  model (:class:`ServiceEvent`), seeded schedule generation, and the
  adapter folding a :class:`~repro.faults.plan.FaultPlan` into the same
  stream;
* :mod:`~repro.service.guards` — runtime invariant guards (CSR
  symmetry, cover validity, backbone battery) that turn a violated
  invariant into a structured incident plus a scoped rebuild instead of
  a crash;
* :mod:`~repro.service.checkpoint` / :mod:`~repro.service.recovery` —
  crash-consistent durability: append-only JSONL event log, versioned
  atomic snapshots, and deterministic restore-and-replay such that a
  killed process resumes bit-identical (same walks, same RNG stream
  position).

Durable formats are JSON/JSONL only — never pickle (lint rule R011).
"""

from .checkpoint import (
    append_event,
    latest_checkpoint,
    read_events,
    write_checkpoint,
)
from .engine import ServiceConfig, ServiceEngine, ServiceReport, run_service
from .events import (
    SERVICE_EVENT_KINDS,
    ServiceEvent,
    events_from_fault_plan,
    seeded_schedule,
)
from .guards import GuardIncident, run_guards
from .recovery import recover, replay_events

__all__ = [
    "SERVICE_EVENT_KINDS",
    "ServiceConfig",
    "ServiceEngine",
    "ServiceEvent",
    "ServiceReport",
    "GuardIncident",
    "append_event",
    "events_from_fault_plan",
    "latest_checkpoint",
    "read_events",
    "recover",
    "replay_events",
    "run_guards",
    "run_service",
    "seeded_schedule",
    "write_checkpoint",
]
