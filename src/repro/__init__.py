"""repro — Connected k-Hop Clustering in Ad Hoc Networks (ICPP 2005).

A full Python reproduction of Yang, Wu & Cao's connected k-hop clustering
system: the iterative k-hop lowest-ID clustering algorithm, the
adjacency-based neighbor clusterhead selection rule (**A-NCR**), the local
minimum-spanning-tree gateway algorithm (**LMSTGA**), their combination
**AC-LMST**, the NC/Mesh baselines and the centralized G-MST lower bound —
plus the unit-disk network substrate, a round-based distributed simulator,
and the experiment harness that regenerates every figure of the paper.

Quickstart::

    from repro import random_topology, run_pipeline

    topo = random_topology(100, degree=6, seed=42)
    result = run_pipeline(topo, k=2, algorithm="AC-LMST")
    print(f"{len(result.heads)} clusterheads, {result.num_gateways} gateways,"
          f" CDS size {result.cds_size}")
"""

from .core import (
    ALGORITHMS,
    BackboneResult,
    Clustering,
    build_all_backbones,
    build_backbone,
    khop_cluster,
    run_pipeline,
    validate_clustering,
)
from .cds import KhopCDS, backbone_broadcast, blind_flood, build_cds, verify_backbone
from .errors import (
    CalibrationError,
    DisconnectedGraphError,
    InvalidParameterError,
    PartitionError,
    ProtocolError,
    RepairError,
    ReproError,
    ValidationError,
)
from .faults import FaultState, LossModel, deliver, random_campaign, run_chaos
from .net import Graph, PathOracle, Topology, random_topology, unit_disk_graph
from .traffic import (
    BatchRouter,
    Workload,
    make_workload,
    measure_load,
    run_traffic,
    simulate_traffic_lifetime,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core pipeline
    "ALGORITHMS",
    "BackboneResult",
    "Clustering",
    "khop_cluster",
    "validate_clustering",
    "build_backbone",
    "build_all_backbones",
    "run_pipeline",
    # CDS & application
    "KhopCDS",
    "build_cds",
    "verify_backbone",
    "blind_flood",
    "backbone_broadcast",
    # substrate
    "Graph",
    "PathOracle",
    "Topology",
    "random_topology",
    "unit_disk_graph",
    # traffic engine
    "Workload",
    "make_workload",
    "BatchRouter",
    "measure_load",
    "simulate_traffic_lifetime",
    "run_traffic",
    # fault injection
    "FaultState",
    "LossModel",
    "deliver",
    "random_campaign",
    "run_chaos",
    # errors
    "ReproError",
    "InvalidParameterError",
    "DisconnectedGraphError",
    "PartitionError",
    "CalibrationError",
    "ValidationError",
    "ProtocolError",
    "RepairError",
]
