"""Seeded chaos harness: randomized fault campaigns with invariant checks.

The fault plans (:mod:`repro.faults.plan`) compile to the engine's
incremental machinery (``without_nodes``, ``with_edge_delta``), the
delivery engine (:mod:`repro.faults.delivery`) stacks vectorized loss
draws on top, and the repair ladder promises component-local floors —
all of which is exactly the kind of code where a subtle cache-coherence
bug survives unit tests and dies only under *composition*.  This module
hunts those bugs the way the incremental oracles are tested: run a
seeded random campaign and, after **every** event batch, re-derive the
ground truth from scratch and compare.

Invariants checked per batch:

1. **edge-set / CSR coherence** — the realized graph's edge set equals
   the fault state's independently book-kept
   :meth:`~repro.faults.plan.FaultState.expected_edges`, and the CSR
   adjacency arrays round-trip to the same normalized edge set
   (symmetry: every arc has its reverse).
2. **component-local backbone cover** — a backbone built on the
   survivors passes the degraded verification battery
   (:func:`~repro.maintenance.repair._verify_degraded`): per-component
   CDS connectivity, k-hop domination, gateways are members, links
   alive.
3. **inherited-vs-fresh walk identity** — a router inheriting the
   previous batch's caches across the delta routes a sampled flow
   subset identically to a cold router on the same backbone.
4. **flow conservation under loss** — one lossy delivery over the
   survivors satisfies the exact loss ledger: transmissions minus
   receptions equals one demand-weighted loss per failed attempt.

On the first violation the report carries a minimal repro line
(``seed`` + the 1-based index of the last applied event), so a failure
reproduces with ``repro-khop chaos --seed S --events I``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..core.clustering import khop_cluster
from ..core.pipeline import _LOCALIZED, build_backbone
from ..errors import InvalidParameterError, ValidationError
from ..maintenance.repair import (
    _strip_nodes,
    _surviving_components,
    _verify_degraded,
)
from ..net.topology import random_topology
from ..obs import span
from ..traffic.router import BatchRouter
from ..traffic.workloads import Workload, make_workload
from ..types import normalize_edge
from .delivery import LossModel, deliver
from .plan import FaultState, random_campaign

__all__ = ["EpochRecord", "ChaosReport", "run_chaos", "render_chaos"]


@dataclass(frozen=True)
class EpochRecord:
    """One event batch's post-state and check outcome.

    Attributes:
        epoch: the plan epoch the batch belongs to.
        events_applied: cumulative events applied up to and including
            this batch (the repro index on violation).
        alive / edges: survivor count and realized edge count.
        components: surviving connected components (dead singletons
            excluded).
        flows_routable: flows whose endpoints share a component.
        delivered: demand-weighted delivered fraction of the batch's
            lossy delivery (1.0 when nothing was routable).
        checks: invariant checks run for this batch.
    """

    epoch: int
    events_applied: int
    alive: int
    edges: int
    components: int
    flows_routable: int
    delivered: float
    checks: int


@dataclass
class ChaosReport:
    """Outcome of one chaos campaign.

    Attributes:
        seed / events: campaign identity (the repro coordinates).
        events_applied: events actually applied (the plan may emit a few
            more records than requested — recovery events ride along).
        epochs: per-batch records, in order.
        violations: human-readable violation lines, each starting with
            the minimal repro (``seed=S events=I``); empty on success.
    """

    seed: int
    events: int
    events_applied: int = 0
    epochs: list[EpochRecord] = field(default_factory=list)
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every invariant held through the whole campaign."""
        return not self.violations

    @property
    def checks_run(self) -> int:
        """Total invariant checks across all batches."""
        return sum(e.checks for e in self.epochs)


def _csr_edge_set(graph) -> set | None:
    """The normalized edge set per the CSR arrays; None on asymmetry."""
    indptr, indices = graph.csr_adjacency
    arcs = set()
    for u in range(graph.n):
        for v in indices[indptr[u] : indptr[u + 1]].tolist():
            arcs.add((u, v))
    for u, v in arcs:
        if (v, u) not in arcs:
            return None
    return {normalize_edge(u, v) for u, v in arcs}


def run_chaos(
    *,
    seed: int,
    events: int,
    n: int = 120,
    degree: float = 8.0,
    k: int = 2,
    algorithm: str = "AC-LMST",
    flows: int = 200,
    sample: int = 16,
    base_loss: float = 0.05,
    max_attempts: int = 3,
    join_weight: float = 0.0,
    stop_on_violation: bool = True,
    trace_path: str | None = None,
) -> ChaosReport:
    """Run one seeded chaos campaign and check invariants per batch.

    Args:
        seed: campaign seed — topology, plan, workload and loss draws
            all derive from it, so (seed, events, join_weight) is a
            full repro.
        events: fault events to request from
            :func:`~repro.faults.plan.random_campaign`.
        join_weight: campaign weight of node-arrival (``join``) events;
            0 (the default) reproduces the pre-growth campaigns
            bit-for-bit, > 0 interleaves grow+shrink+rewire.  Arrivals
            resize the per-batch workload/loss model to the current
            node count; the inherited-vs-fresh walk check inherits
            join-only batches through the node-add path and skips
            batches that mix growth with link changes (no single
            inheritance certificate covers both at once).
        n / degree: chaos topology size and target mean degree.
        k: cluster radius.
        algorithm: backbone pipeline (localized only — the campaign
            partitions the graph on purpose).
        flows: workload size for the routing/delivery checks.
        sample: flows compared for inherited-vs-fresh walk identity.
        base_loss: loss floor applied to every link on top of the
            campaign's per-link degradations.
        max_attempts: retry budget for the per-batch lossy delivery.
        stop_on_violation: stop at the first violated invariant
            (the default — the repro line points at it); False keeps
            going and collects every violation.
        trace_path: when the run is being traced (``--trace``), the
            trace file's path; violation repro lines then carry a
            matching ``--trace`` flag so the repro run captures the
            same observability artifacts.
    """
    if events < 1:
        raise InvalidParameterError(f"events must be >= 1, got {events}")
    if algorithm not in _LOCALIZED:
        raise InvalidParameterError(
            f"chaos needs a localized algorithm "
            f"(one of {sorted(_LOCALIZED)}), got {algorithm!r}"
        )
    if not 0.0 <= join_weight < 1.0:
        raise InvalidParameterError(
            f"join_weight must be in [0, 1), got {join_weight}"
        )
    topology = random_topology(n, degree=degree, seed=seed)
    plan = random_campaign(
        topology,
        events=events,
        epochs=max(2, events // 4),
        seed=seed,
        weights={"join": join_weight} if join_weight else None,
    )
    workload = make_workload("uniform", n, flows, seed=seed)
    state = FaultState(topology.graph)
    report = ChaosReport(seed=seed, events=len(plan))

    prev_router: Optional[BatchRouter] = None
    prev_edges = set(topology.graph.edges)

    def violate(msg: str) -> None:
        trace_arg = f" --trace {trace_path}" if trace_path else ""
        join_arg = f" --join-weight {join_weight}" if join_weight else ""
        report.violations.append(
            f"seed={seed} events={report.events_applied}: {msg} "
            f"(repro: repro-khop chaos --seed {seed} "
            f"--events {report.events_applied}{join_arg}{trace_arg})"
        )

    with span("chaos", seed=seed, events=events):
        for epoch, batch in plan.batches():
            if not batch:
                continue
            with span("batch", epoch=epoch, events=len(batch)):
                batch_kinds = {ev.kind for ev in batch}
                state.apply_batch(batch)
                report.events_applied += len(batch)
                graph = state.graph
                dead = set(state.dead)
                checks = 0
                if workload.n != graph.n:
                    # Arrivals grew the population: regenerate the
                    # (seed-pure) workload at the current node count so
                    # new nodes source and sink traffic too.
                    workload = make_workload(
                        "uniform", graph.n, flows, seed=seed
                    )

                # 1 — edge-set coherence + CSR symmetry.
                realized = set(graph.edges)
                expected = state.expected_edges()
                checks += 1
                if realized != expected:
                    missing = sorted(expected - realized)[:3]
                    extra = sorted(realized - expected)[:3]
                    violate(
                        f"edge-set mismatch after batch at epoch {epoch}: "
                        f"missing={missing} extra={extra}"
                    )
                checks += 1
                csr_edges = _csr_edge_set(graph)
                if csr_edges is None:
                    violate(f"CSR adjacency asymmetric at epoch {epoch}")
                elif csr_edges != realized:
                    violate(f"CSR edge set diverges from edge list at epoch {epoch}")

                # 2 — component-local backbone passes the degraded battery.
                components = _surviving_components(graph, dead)
                clustering = khop_cluster(graph, k, require_connected=False)
                stripped = _strip_nodes(clustering, graph, dead)
                checks += 1
                try:
                    backbone = build_backbone(stripped, algorithm)
                    _verify_degraded(backbone, dead, components)
                except ValidationError as exc:
                    violate(f"degraded backbone battery failed at epoch {epoch}: {exc}")
                    if stop_on_violation:
                        break
                    prev_router = None
                    prev_edges = realized
                    continue

                # Routable flows: endpoints alive and sharing a component.
                labels = np.full(graph.n, -1, dtype=np.int64)
                for i, comp in enumerate(graph.connected_components()):
                    labels[list(comp)] = i
                routable = labels[workload.sources] == labels[workload.targets]
                sub = Workload(
                    name=workload.name,
                    n=graph.n,
                    sources=workload.sources[routable],
                    targets=workload.targets[routable],
                    demands=workload.demands[routable],
                    seed=workload.seed,
                )
                router = BatchRouter(backbone)

                # 3 — inherited caches route identically to a cold router.
                # Join-only batches inherit through the node-add path;
                # batches mixing growth with link changes have no single
                # inheritance certificate and skip the check.
                inherited: Optional[BatchRouter] = None
                if prev_router is not None and sub.num_flows:
                    if batch_kinds == {"join"}:
                        inherited = BatchRouter(backbone)
                        inherited.inherit_node_add(prev_router)
                    elif "join" not in batch_kinds:
                        touched = {x for e in prev_edges ^ realized for x in e}
                        inherited = BatchRouter(backbone)
                        inherited.inherit_edge_delta(prev_router, touched)
                if inherited is not None:
                    take = min(sample, sub.num_flows)
                    probe = Workload(
                        name=sub.name,
                        n=graph.n,
                        sources=sub.sources[:take],
                        targets=sub.targets[:take],
                        demands=sub.demands[:take],
                        seed=sub.seed,
                    )
                    checks += 1
                    cold = router.route_flows(probe, with_shortest=False)
                    warm = inherited.route_flows(probe, with_shortest=False)
                    if cold.walks != warm.walks:
                        diverged = next(
                            i
                            for i, (a, b) in enumerate(zip(cold.walks, warm.walks))
                            if a != b
                        )
                        violate(
                            f"inherited router diverged from cold router at epoch "
                            f"{epoch}, flow {diverged}: "
                            f"{warm.walks[diverged]} != {cold.walks[diverged]}"
                        )

                # 4 — lossy delivery satisfies the exact loss ledger.
                delivered = 1.0
                if sub.num_flows:
                    loss = LossModel.from_overrides(
                        graph.n, dict(state.loss), base_loss=base_loss
                    )
                    routed = router.route_flows(sub, with_shortest=False)
                    delivery = deliver(
                        routed,
                        loss,
                        seed=seed + report.events_applied,
                        max_attempts=max_attempts,
                    )
                    delivered = float(delivery.delivered_fraction)
                    dem = sub.demands.astype(np.int64)
                    success = delivery.outcome == 0  # FlowOutcome.DELIVERED
                    expected_lost = int(
                        (dem * delivery.attempts).sum() - dem[success].sum()
                    )
                    checks += 1
                    if delivery.lost_packets != expected_lost:
                        violate(
                            f"loss ledger broken at epoch {epoch}: tx-rx = "
                            f"{delivery.lost_packets}, failed attempts account "
                            f"for {expected_lost}"
                        )
                    checks += 1
                    if delivery.delivered_packets > delivery.offered_packets:
                        violate(
                            f"delivered more packets than offered at epoch {epoch}"
                        )

                report.epochs.append(
                    EpochRecord(
                        epoch=epoch,
                        events_applied=report.events_applied,
                        alive=graph.n - len(dead),
                        edges=len(realized),
                        components=len(components),
                        flows_routable=int(sub.num_flows),
                        delivered=delivered,
                        checks=checks,
                    )
                )
                prev_router = router
                prev_edges = realized
                if report.violations and stop_on_violation:
                    break
    return report


def render_chaos(report: ChaosReport) -> str:
    """Human-readable campaign summary (and repro lines on failure)."""
    lines = [
        f"chaos campaign: seed={report.seed}, "
        f"{report.events_applied} events applied over "
        f"{len(report.epochs)} batches, {report.checks_run} invariant "
        f"checks",
    ]
    if report.epochs:
        last = report.epochs[-1]
        mean_delivered = float(
            np.mean([e.delivered for e in report.epochs])
        )
        lines.append(
            f"final state: {last.alive} alive, {last.edges} edges, "
            f"{last.components} components, "
            f"mean delivered {mean_delivered:.3f}"
        )
    if report.ok:
        lines.append("all invariants held")
    else:
        lines.append(f"{len(report.violations)} VIOLATION(S):")
        lines.extend(f"  {v}" for v in report.violations)
    return "\n".join(lines)
