"""Lossy per-hop delivery with retry/backoff over routed flows.

The binary world — a flow is either perfectly delivered or silently
dropped — ends here.  Given a routed batch
(:class:`~repro.traffic.router.RoutedFlows`) and a :class:`LossModel`
of per-link loss probabilities, :func:`deliver` turns every walk into a
vectorized per-hop survival draw:

* each *attempt* transmits the walk hop by hop until every hop survives
  (``DELIVERED``) or one draw fails — the failing hop's transmit is
  charged but its receive is not, which is exactly how a lost radio
  frame costs energy;
* failed flows retry up to ``max_attempts`` with exponential backoff:
  attempt ``i`` re-enters ``backoff_base**(i-1)`` epochs after the
  previous one, so the report's ``completion_epoch`` says *when* (in
  epoch units) each flow finally got through or died;
* flows that exhaust the budget end as ``DROPPED_AT_HOP``; flows that
  never had a viable route (endpoint dead, cross-partition) are
  ``ABANDONED`` without touching the network.

All accounting is flat-array work — one random draw per hop per round,
``np.minimum.reduceat`` for first-failure positions, demand-weighted
``np.bincount`` for per-node transmit/receive tallies — so the cost is
O(total walk length x rounds), never a Python per-packet loop.  The
per-node ``tx``/``rx`` vectors plug straight into
:meth:`~repro.net.energy.EnergyModel.charge_load`, so lossy regions
(whose flows retransmit) drain first.

The flow-conservation identity ``tx.sum() - rx.sum() == lost packets``
(one unreceived transmission per failed attempt, demand-weighted) is the
invariant the chaos harness checks after every event batch.
"""

from __future__ import annotations

from enum import IntEnum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (traffic -> faults)
    from ..traffic.congestion import CongestionModel

from ..errors import InvalidParameterError
from ..net.oracle import DIST_DTYPE
from ..obs import counter as obs_counter
from ..obs import enabled as obs_enabled
from ..obs import histogram as obs_histogram
from ..traffic.router import RoutedFlows
from ..types import Edge

__all__ = ["FlowOutcome", "LossModel", "DeliveryReport", "deliver"]


class FlowOutcome(IntEnum):
    """Per-flow terminal state of one lossy delivery round.

    Attributes:
        DELIVERED: some attempt survived every hop.
        DROPPED_AT_HOP: every allowed attempt died in-network; the report
            records the last failing hop index.
        ABANDONED: the flow never entered the network — no viable route
            (dead endpoint, cross-partition) or a zero attempt budget.
    """

    DELIVERED = 0
    DROPPED_AT_HOP = 1
    ABANDONED = 2


@dataclass(frozen=True)
class LossModel:
    """Per-link loss probabilities: a base rate plus per-edge overrides.

    An override *replaces* the base rate for its link (it does not
    compose), matching the last-writer-wins semantics of ``degrade``
    fault events.  Lookup is one ``searchsorted`` against the encoded,
    sorted override keys, so per-hop rates for a whole flow batch cost
    O(H log overrides).

    Attributes:
        n: node-ID space (edges are encoded as ``min * n + max``).
        base_loss: loss probability of every link without an override.
        keys: sorted encoded override edges (int64, read-only).
        rates: override loss probabilities parallel to ``keys``.
    """

    n: int
    base_loss: float
    keys: np.ndarray
    rates: np.ndarray

    def __post_init__(self) -> None:
        if self.n < 0:
            raise InvalidParameterError(f"n must be >= 0, got {self.n}")
        if not 0.0 <= self.base_loss <= 1.0:
            raise InvalidParameterError(
                f"base_loss must be in [0, 1], got {self.base_loss}"
            )

    @classmethod
    def uniform(cls, n: int, loss: float) -> "LossModel":
        """Every link loses independently with probability ``loss``."""
        return cls.from_overrides(n, {}, base_loss=loss)

    @classmethod
    def from_overrides(
        cls,
        n: int,
        overrides: Mapping[Edge, float],
        *,
        base_loss: float = 0.0,
    ) -> "LossModel":
        """Build from a ``{edge: loss}`` mapping (e.g. ``FaultState.loss``)."""
        items = sorted(
            (min(e) * n + max(e), float(p)) for e, p in overrides.items()
        )
        for _, p in items:
            if not 0.0 <= p <= 1.0:
                raise InvalidParameterError(
                    f"loss probabilities must be in [0, 1], got {p}"
                )
        keys = np.asarray([k for k, _ in items], dtype=np.int64)
        rates = np.asarray([p for _, p in items], dtype=np.float64)
        keys.setflags(write=False)
        rates.setflags(write=False)
        return cls(n=n, base_loss=base_loss, keys=keys, rates=rates)

    @property
    def num_overrides(self) -> int:
        """How many links carry a non-base loss rate."""
        return int(self.keys.size)

    def hop_loss(self, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Loss probability for each hop ``u[i] -> v[i]`` (float64)."""
        lo = np.minimum(u, v).astype(np.int64)
        hi = np.maximum(u, v).astype(np.int64)
        code = lo * self.n + hi
        out = np.full(code.shape, self.base_loss, dtype=np.float64)
        if self.keys.size:
            idx = np.searchsorted(self.keys, code)
            idx_c = np.minimum(idx, self.keys.size - 1)
            hit = self.keys[idx_c] == code
            out[hit] = self.rates[idx_c[hit]]
        return out

    def link_loss(self, u: int, v: int) -> float:
        """Loss probability of one link (scalar convenience)."""
        return float(
            self.hop_loss(
                np.asarray([u], dtype=np.int64),
                np.asarray([v], dtype=np.int64),
            )[0]
        )

    def combine(self, other: "LossModel") -> "LossModel":
        """Compose two independent loss sources into one model.

        A hop survives the composite iff it survives both sources, so
        every link's combined rate is ``1 - (1-p1)(1-p2)`` — base rates
        compose, and the override set is the union of both models'
        overrides with each code evaluated against *both* models.  The
        natural way to stack congestion drops
        (:meth:`~repro.traffic.congestion.CongestionModel.loss_model`)
        on top of a fault-injection model.

        Raises:
            InvalidParameterError: if the models disagree on ``n``.
        """
        if self.n != other.n:
            raise InvalidParameterError(
                f"cannot combine loss models over {self.n} and "
                f"{other.n} nodes"
            )
        codes = np.union1d(self.keys, other.keys).astype(np.int64)

        def rate_of(model: "LossModel") -> np.ndarray:
            out = np.full(codes.size, model.base_loss, dtype=np.float64)
            if model.keys.size:
                idx = np.minimum(
                    np.searchsorted(model.keys, codes), model.keys.size - 1
                )
                hit = model.keys[idx] == codes
                out[hit] = model.rates[idx[hit]]
            return out

        rates = 1.0 - (1.0 - rate_of(self)) * (1.0 - rate_of(other))
        base = 1.0 - (1.0 - self.base_loss) * (1.0 - other.base_loss)
        codes.setflags(write=False)
        rates.setflags(write=False)
        return LossModel(n=self.n, base_loss=base, keys=codes, rates=rates)


@dataclass(frozen=True)
class DeliveryReport:
    """Per-flow outcomes and per-node costs of one lossy delivery.

    Arrays are parallel to the routed batch's flows.

    Attributes:
        outcome: per-flow :class:`FlowOutcome` values (int8).
        attempts: transmission attempts made per flow (0 for abandoned).
        failed_hop: hop index (0-based along the walk) where the *last*
            attempt of a dropped flow died; -1 for delivered/abandoned.
        completion_epoch: virtual epoch offset (backoff units) at which
            the flow delivered or made its final attempt; 0 for
            first-try deliveries and abandoned flows.
        tx / rx: per-node demand-weighted transmit / receive counts,
            including every retransmission and truncated walk — feed
            these to :meth:`~repro.net.energy.EnergyModel.charge_load`.
    """

    outcome: np.ndarray
    attempts: np.ndarray
    failed_hop: np.ndarray
    completion_epoch: np.ndarray
    tx: np.ndarray
    rx: np.ndarray
    offered_packets: int
    delivered_packets: int

    @property
    def num_flows(self) -> int:
        """Number of flows accounted."""
        return int(self.outcome.size)

    @property
    def delivered_fraction(self) -> float:
        """Demand-weighted fraction of offered packets delivered."""
        if self.offered_packets == 0:
            return 1.0
        return self.delivered_packets / self.offered_packets

    @property
    def lost_packets(self) -> int:
        """Transmissions that were never received (one per failed attempt)."""
        return int(self.tx.sum() - self.rx.sum())

    @property
    def mean_attempts(self) -> float:
        """Mean attempts over flows that entered the network."""
        tried = self.attempts[self.attempts > 0]
        return float(tried.mean()) if tried.size else 0.0

    def counts(self) -> dict[str, int]:
        """Histogram of outcomes by name."""
        return {
            o.name: int((self.outcome == o).sum()) for o in FlowOutcome
        }


def _publish_delivery(report: DeliveryReport) -> DeliveryReport:
    """Tally one delivery round into the metrics registry (if enabled)."""
    if obs_enabled():
        obs_counter("delivery.flows_offered").add(report.num_flows)
        obs_counter("delivery.tx_packets").add(int(report.tx.sum()))
        obs_counter("delivery.rx_packets").add(int(report.rx.sum()))
        obs_counter("delivery.lost_packets").add(report.lost_packets)
        obs_histogram("delivery.flow_attempts").observe_many(
            report.attempts[report.attempts > 0].tolist()
        )
    return report


def deliver(
    routed: RoutedFlows,
    loss: LossModel,
    *,
    seed: int,
    max_attempts: int = 3,
    backoff_base: int = 2,
    routable: Optional[np.ndarray] = None,
    congestion: Optional["CongestionModel"] = None,
) -> DeliveryReport:
    """Run every routed flow through the lossy network with retries.

    When the observability layer is enabled, each round's tx/rx/lost
    packet ledger lands in ``delivery.*`` counters and the per-flow
    attempt counts in the ``delivery.flow_attempts`` histogram.

    Args:
        routed: the routed batch (walks define the hops to survive).
        loss: per-link loss probabilities.
        seed: RNG seed; identical seeds give identical outcomes.
        max_attempts: total attempt budget per flow (>= 0; 0 abandons
            every flow without transmitting).
        backoff_base: attempt ``i`` waits ``backoff_base**(i-1)`` epochs
            after attempt ``i-1`` (1 = immediate retries).
        routable: optional per-flow bool mask; flows marked False are
            ``ABANDONED`` without any attempt (the degraded-mode hook for
            cross-partition flows).
        congestion: optional
            :class:`~repro.traffic.congestion.CongestionModel`; when
            set, the batch's own offered load is measured against the
            backbone's link capacities and the resulting fluid-queue
            drop rates :meth:`combine <LossModel.combine>` with
            ``loss`` — over-capacity links degrade delivery instead of
            carrying infinite traffic, and the extra retransmissions
            land in ``tx``/``rx`` (congested heads burn energy).
    """
    if congestion is not None:
        loss = loss.combine(congestion.loss_model(routed))
    if max_attempts < 0:
        raise InvalidParameterError(
            f"max_attempts must be >= 0, got {max_attempts}"
        )
    if backoff_base < 1:
        raise InvalidParameterError(
            f"backoff_base must be >= 1, got {backoff_base}"
        )
    num_flows = routed.num_flows
    demands = routed.workload.demands
    n = loss.n
    outcome = np.full(num_flows, int(FlowOutcome.ABANDONED), dtype=np.int8)
    attempts = np.zeros(num_flows, dtype=np.int64)
    failed_hop = np.full(num_flows, -1, dtype=DIST_DTYPE)
    completion = np.zeros(num_flows, dtype=np.int64)
    tx = np.zeros(n, dtype=np.int64)
    rx = np.zeros(n, dtype=np.int64)
    offered = int(demands.sum())

    if routable is None:
        active = np.ones(num_flows, dtype=bool)
    else:
        active = np.asarray(routable, dtype=bool).copy()
        if active.shape != (num_flows,):
            raise InvalidParameterError(
                f"routable mask must have shape ({num_flows},), "
                f"got {active.shape}"
            )
    if max_attempts == 0:
        active[:] = False

    per_flow_hops = np.asarray(routed.hops, dtype=np.int64)
    # Zero-hop walks (degraded-mode placeholders the caller forgot to
    # mask, or source-at-target corner cases) have nothing to lose:
    # deliver them on a free first attempt instead of feeding empty
    # segments to the reduceat below.
    trivial = active & (per_flow_hops == 0)
    if trivial.any():
        outcome[trivial] = int(FlowOutcome.DELIVERED)
        attempts[trivial] = 1
        active &= ~trivial

    if num_flows == 0 or not active.any():
        delivered_mask = outcome == int(FlowOutcome.DELIVERED)
        return _publish_delivery(
            DeliveryReport(
                outcome=outcome,
                attempts=attempts,
                failed_hop=failed_hop,
                completion_epoch=completion,
                tx=tx,
                rx=rx,
                offered_packets=offered,
                delivered_packets=int(demands[delivered_mask].sum()),
            )
        )

    # Flatten every walk's hops once: hop i of flow f is
    # walks[f][i] -> walks[f][i+1].  Zero-hop flows are inactive by now,
    # so their empty segments only need index clamping (reduceat reads
    # the element *at* an empty segment's start); the garbage minima they
    # produce are masked off by `active`.
    flat = np.concatenate([np.asarray(w, dtype=np.int64) for w in routed.walks])
    lengths = per_flow_hops + 1
    ends = np.cumsum(lengths)
    starts = ends - lengths
    is_first = np.zeros(flat.size, dtype=bool)
    is_first[starts] = True
    is_last = np.zeros(flat.size, dtype=bool)
    is_last[ends - 1] = True
    hop_u = flat[~is_last]
    hop_v = flat[~is_first]
    total_hops = int(per_flow_hops.sum())
    hop_flow = np.repeat(np.arange(num_flows, dtype=np.int64), per_flow_hops)
    hop_starts = np.cumsum(per_flow_hops) - per_flow_hops
    hop_pos = np.arange(total_hops, dtype=np.int64) - np.repeat(
        hop_starts, per_flow_hops
    )
    p_hop = loss.hop_loss(hop_u, hop_v)
    w_hop = np.repeat(demands, per_flow_hops).astype(np.float64)

    rng = np.random.default_rng(seed)
    epoch_offset = 0
    sentinel = total_hops  # > every valid hop position
    for attempt in range(1, max_attempts + 1):
        if not active.any():
            break
        # One draw per hop for *all* flows keeps each flow's fate a pure
        # function of (seed, attempt, its own hops) — inactive draws are
        # simply ignored, so composing campaigns stays deterministic.
        draws = rng.random(total_hops)
        fail_vals = np.where(draws < p_hop, hop_pos, sentinel)
        first_fail = np.minimum.reduceat(
            fail_vals, np.minimum(hop_starts, total_hops - 1)
        )
        attempts[active] += 1
        delivered_now = active & (first_fail == sentinel)
        dropped_now = active & (first_fail < sentinel)

        # Hops transmitted this round: everything up to and including the
        # first failing hop (whose receive is lost); delivered flows
        # transmit their whole walk.
        ff_hop = np.repeat(first_fail, per_flow_hops)
        act_hop = active[hop_flow]
        tx_mask = act_hop & (hop_pos <= ff_hop)
        rx_mask = act_hop & (hop_pos < ff_hop)
        tx += np.rint(
            np.bincount(hop_u[tx_mask], weights=w_hop[tx_mask], minlength=n)
        ).astype(np.int64)
        rx += np.rint(
            np.bincount(hop_v[rx_mask], weights=w_hop[rx_mask], minlength=n)
        ).astype(np.int64)

        outcome[delivered_now] = int(FlowOutcome.DELIVERED)
        failed_hop[delivered_now] = -1
        completion[delivered_now] = epoch_offset
        failed_hop[dropped_now] = first_fail[dropped_now].astype(DIST_DTYPE)
        completion[dropped_now] = epoch_offset
        active = dropped_now
        epoch_offset += backoff_base ** (attempt - 1)

    outcome[active] = int(FlowOutcome.DROPPED_AT_HOP)
    delivered_mask = outcome == int(FlowOutcome.DELIVERED)
    delivered_packets = int(demands[delivered_mask].sum())
    return _publish_delivery(
        DeliveryReport(
            outcome=outcome,
            attempts=attempts,
            failed_hop=failed_hop,
            completion_epoch=completion,
            tx=tx,
            rx=rx,
            offered_packets=offered,
            delivered_packets=delivered_packets,
        )
    )
