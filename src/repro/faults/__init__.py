"""Seeded fault injection and degraded delivery for the repro engine.

The paper's premise is that a k-hop clustered backbone keeps an ad hoc
network usable *while nodes fail and move*; this package supplies the
adversary.  Three layers compose:

* :mod:`repro.faults.plan` — deterministic, RNG-disciplined schedules of
  node crashes, link flaps, per-link loss degradation and correlated
  spatial (jamming-disk) outages, emitted as per-epoch
  :class:`FaultEvent` batches that compile down to the engine's existing
  :meth:`~repro.net.graph.Graph.without_nodes` /
  :meth:`~repro.net.graph.Graph.with_edge_delta` machinery;
* :mod:`repro.faults.delivery` — lossy per-hop delivery with
  retry/backoff over routed flows: every walk becomes a vectorized
  survival draw, failed flows retry under an exponential-backoff budget,
  retransmissions charge the energy model, and each flow ends in a typed
  :class:`FlowOutcome`;
* :mod:`repro.faults.chaos` — the chaos harness: a seeded randomized
  campaign driven against the full pipeline with engine invariants
  (CSR symmetry, inherited-vs-fresh walk identity, CDS cover, flow
  conservation) checked after every event batch, printing a minimal
  reproduction line on the first violation.
"""

from .chaos import ChaosReport, EpochRecord, render_chaos, run_chaos
from .delivery import (
    DeliveryReport,
    FlowOutcome,
    LossModel,
    deliver,
)
from .plan import (
    FaultEvent,
    FaultPlan,
    FaultState,
    compose,
    crash_plan,
    degrade_plan,
    flap_plan,
    jam_plan,
    random_campaign,
)

__all__ = [
    # plans
    "FaultEvent",
    "FaultPlan",
    "FaultState",
    "crash_plan",
    "flap_plan",
    "degrade_plan",
    "jam_plan",
    "compose",
    "random_campaign",
    # delivery
    "FlowOutcome",
    "LossModel",
    "DeliveryReport",
    "deliver",
    # chaos
    "ChaosReport",
    "EpochRecord",
    "render_chaos",
    "run_chaos",
]
