"""Composable, RNG-disciplined fault schedules.

A *fault plan* is a deterministic, seed-reproducible sequence of
:class:`FaultEvent` records grouped into epochs.  Builders exist for the
four fault families the robustness experiments need:

* :func:`crash_plan` — permanent node failures (§3.3 "nodes that die");
* :func:`flap_plan` — transient link outages that come back after a
  configurable number of epochs;
* :func:`degrade_plan` — per-link loss-rate degradation feeding the
  lossy delivery model (:mod:`repro.faults.delivery`);
* :func:`jam_plan` — correlated spatial outages: a jamming disk placed
  in the deployment area kills every link whose segment crosses it.

Plans are values: :func:`compose` merges any number of them into one
epoch-ordered schedule, and identical seeds always yield identical event
streams (the determinism tests assert this bit-for-bit).

Compilation happens in :class:`FaultState`, which folds an event batch
into the engine's existing incremental machinery — single crashes go
through :meth:`~repro.net.graph.Graph.without_nodes` (CSR patch + oracle
cache inheritance) and all link changes through one
:meth:`~repro.net.graph.Graph.with_edge_delta` call — so every
cache-inheritance layer is exercised under fire.  Overlapping outages
(two jams covering the same link, a flap inside a jam) are reference
counted: a link comes back only when *every* outage holding it down has
ended, and never while an endpoint is dead.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field, replace
from typing import Iterator, Optional, Sequence

import numpy as np

from ..errors import InvalidParameterError
from ..net.graph import Graph
from ..net.topology import Topology
from ..types import Edge, normalize_edge

__all__ = [
    "FaultEvent",
    "FaultPlan",
    "FaultState",
    "EVENT_KINDS",
    "crash_plan",
    "flap_plan",
    "degrade_plan",
    "jam_plan",
    "compose",
    "random_campaign",
]

#: Recognized event kinds, in no particular order.
EVENT_KINDS: tuple[str, ...] = (
    "crash",
    "join",
    "link_down",
    "link_up",
    "degrade",
    "jam",
    "jam_end",
)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault, fully compiled at plan-build time.

    Spatial events (``jam``/``jam_end``) carry both their geometry
    (``center``/``radius``, for reporting) and the concrete ``edges``
    tuple the disk covers — compilation against node positions happens
    once in :func:`jam_plan`, so applying a plan never needs the
    topology again.

    Attributes:
        epoch: epoch index the event fires in (0-based).
        kind: one of :data:`EVENT_KINDS`.
        node: crashed node for ``crash`` events; the arriving node's
            planned id for ``join`` events (ids are assigned in plan
            order, so the compiler can check numbering).
        edges: affected links for link/jam/degrade events; for ``join``
            events the compiled unit-disk attach links (normalized).
        loss: new per-link loss probability for ``degrade`` events.
        center: jamming-disk center for ``jam``/``jam_end`` events; the
            arrival position for ``join`` events.
        radius: jamming-disk radius for ``jam``/``jam_end`` events.
    """

    epoch: int
    kind: str
    node: Optional[int] = None
    edges: tuple[Edge, ...] = ()
    loss: float = 0.0
    center: Optional[tuple[float, float]] = None
    radius: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise InvalidParameterError(f"unknown fault kind {self.kind!r}")
        if self.epoch < 0:
            raise InvalidParameterError(f"epoch must be >= 0, got {self.epoch}")
        if not 0.0 <= self.loss <= 1.0:
            raise InvalidParameterError(
                f"loss must be in [0, 1], got {self.loss}"
            )


@dataclass(frozen=True)
class FaultPlan:
    """An epoch-ordered schedule of :class:`FaultEvent` records.

    Attributes:
        events: events sorted by epoch (stable, so each builder's
            internal order is preserved within an epoch).
        epochs: number of epochs the plan spans; :meth:`batches` yields
            exactly this many (possibly empty) batches.
    """

    events: tuple[FaultEvent, ...]
    epochs: int

    def __post_init__(self) -> None:
        if self.epochs < 0:
            raise InvalidParameterError(
                f"epochs must be >= 0, got {self.epochs}"
            )
        for ev in self.events:
            if ev.epoch >= self.epochs:
                raise InvalidParameterError(
                    f"event at epoch {ev.epoch} outside plan of {self.epochs}"
                )
        object.__setattr__(
            self, "events", tuple(sorted(self.events, key=lambda e: e.epoch))
        )

    def __len__(self) -> int:
        return len(self.events)

    def batches(self) -> Iterator[tuple[int, tuple[FaultEvent, ...]]]:
        """Yield ``(epoch, events_in_epoch)`` for every epoch in order."""
        i = 0
        for epoch in range(self.epochs):
            j = i
            while j < len(self.events) and self.events[j].epoch == epoch:
                j += 1
            yield epoch, self.events[i:j]
            i = j

    def shifted(self, by: int) -> "FaultPlan":
        """Copy of the plan with every event delayed by ``by`` epochs."""
        if by < 0:
            raise InvalidParameterError(f"shift must be >= 0, got {by}")
        return FaultPlan(
            tuple(replace(ev, epoch=ev.epoch + by) for ev in self.events),
            self.epochs + by,
        )


def compose(*plans: FaultPlan) -> FaultPlan:
    """Merge plans into one schedule spanning the longest plan's epochs.

    Events keep their absolute epochs; within an epoch, events from
    earlier arguments apply first (the merge is stable).
    """
    events: list[FaultEvent] = []
    for p in plans:
        events.extend(p.events)
    epochs = max((p.epochs for p in plans), default=0)
    return FaultPlan(tuple(events), epochs)


# --------------------------------------------------------------------- #
# seeded builders
# --------------------------------------------------------------------- #


def _spread_epochs(
    rng: np.random.Generator, count: int, epochs: int
) -> np.ndarray:
    """Draw ``count`` sorted epoch indices uniformly from ``[0, epochs)``."""
    if epochs <= 0:
        raise InvalidParameterError(f"epochs must be >= 1, got {epochs}")
    return np.sort(rng.integers(0, epochs, size=count))


def crash_plan(
    graph: Graph,
    *,
    count: int,
    epochs: int,
    seed: int,
) -> FaultPlan:
    """Permanent crashes of ``count`` distinct nodes spread over ``epochs``.

    Nodes are drawn without replacement from the whole graph, so one plan
    never crashes a node twice (composing independent plans may — the
    :class:`FaultState` compiler treats a repeat crash as a no-op).
    """
    if not 0 <= count <= graph.n:
        raise InvalidParameterError(
            f"crash count must be in [0, {graph.n}], got {count}"
        )
    rng = np.random.default_rng(seed)
    nodes = rng.choice(graph.n, size=count, replace=False)
    when = _spread_epochs(rng, count, epochs)
    events = tuple(
        FaultEvent(epoch=int(e), kind="crash", node=int(x))
        for e, x in zip(when, nodes)
    )
    return FaultPlan(events, epochs)


def _choose_edges(
    rng: np.random.Generator, graph: Graph, count: int, *, replace_: bool
) -> list[Edge]:
    if graph.m == 0:
        if count:
            raise InvalidParameterError("graph has no edges to fault")
        return []
    if not replace_ and count > graph.m:
        raise InvalidParameterError(
            f"cannot pick {count} distinct edges from {graph.m}"
        )
    idx = rng.choice(graph.m, size=count, replace=replace_)
    return [graph.edges[int(i)] for i in idx]


def flap_plan(
    graph: Graph,
    *,
    count: int,
    epochs: int,
    seed: int,
    down_for: int = 1,
) -> FaultPlan:
    """``count`` transient link outages, each lasting ``down_for`` epochs.

    Every flap emits a ``link_down`` event and, when it fits inside the
    plan, a matching ``link_up`` ``down_for`` epochs later; a flap whose
    recovery would land past the horizon simply never comes back.
    """
    if down_for < 1:
        raise InvalidParameterError(f"down_for must be >= 1, got {down_for}")
    rng = np.random.default_rng(seed)
    edges = _choose_edges(rng, graph, count, replace_=True)
    when = _spread_epochs(rng, count, epochs)
    events: list[FaultEvent] = []
    for e, edge in zip(when, edges):
        events.append(FaultEvent(epoch=int(e), kind="link_down", edges=(edge,)))
        up = int(e) + down_for
        if up < epochs:
            events.append(FaultEvent(epoch=up, kind="link_up", edges=(edge,)))
    return FaultPlan(tuple(events), epochs)


def degrade_plan(
    graph: Graph,
    *,
    count: int,
    epochs: int,
    seed: int,
    loss_range: tuple[float, float] = (0.05, 0.5),
) -> FaultPlan:
    """``count`` per-link loss-rate degradations with uniform random rates.

    Each event pins one link's loss probability to a draw from
    ``loss_range``; later degrades of the same link overwrite earlier
    ones (last writer wins, matching :class:`FaultState` semantics).
    """
    lo, hi = loss_range
    if not 0.0 <= lo <= hi <= 1.0:
        raise InvalidParameterError(
            f"loss_range must satisfy 0 <= lo <= hi <= 1, got {loss_range}"
        )
    rng = np.random.default_rng(seed)
    edges = _choose_edges(rng, graph, count, replace_=True)
    when = _spread_epochs(rng, count, epochs)
    rates = rng.uniform(lo, hi, size=count)
    events = tuple(
        FaultEvent(epoch=int(e), kind="degrade", edges=(edge,), loss=float(r))
        for e, edge, r in zip(when, edges, rates)
    )
    return FaultPlan(events, epochs)


def edges_crossing_disk(
    topology: Topology, center: tuple[float, float], radius: float
) -> tuple[Edge, ...]:
    """Links whose segment passes within ``radius`` of ``center``.

    Vectorized point-to-segment distance over the whole edge list: a
    link is jammed when the closest point of its segment to the disk
    center lies inside the disk (covers both endpoint-in-disk and
    crossing-chord cases).
    """
    if radius < 0:
        raise InvalidParameterError(f"radius must be >= 0, got {radius}")
    g = topology.graph
    if g.m == 0:
        return ()
    e = np.asarray(g.edges, dtype=np.int64)
    p = topology.positions[e[:, 0]]
    q = topology.positions[e[:, 1]]
    c = np.asarray(center, dtype=np.float64)
    d = q - p
    dd = np.einsum("ij,ij->i", d, d)
    # Parameter of the closest point on each segment, clamped to [0, 1];
    # zero-length segments (coincident endpoints) fall back to t = 0.
    num = np.einsum("ij,ij->i", c[None, :] - p, d)
    t = np.where(dd > 0.0, num / np.where(dd > 0.0, dd, 1.0), 0.0)
    t = np.clip(t, 0.0, 1.0)
    closest = p + t[:, None] * d
    diff = closest - c[None, :]
    inside = np.einsum("ij,ij->i", diff, diff) <= radius * radius
    return tuple(
        normalize_edge(int(u), int(v)) for u, v in e[inside].tolist()
    )


def jam_plan(
    topology: Topology,
    *,
    count: int,
    epochs: int,
    seed: int,
    radius: Optional[float] = None,
    duration: int = 1,
) -> FaultPlan:
    """``count`` jamming disks at uniform random positions in the area.

    Every disk kills all links crossing it (compiled to a concrete edge
    tuple here, against the topology's positions) for ``duration``
    epochs.  Default disk radius is the transmission range, which in a
    unit-disk graph reliably covers a handful of correlated links.
    """
    if duration < 1:
        raise InvalidParameterError(f"duration must be >= 1, got {duration}")
    r = topology.radius if radius is None else float(radius)
    if r < 0:
        raise InvalidParameterError(f"radius must be >= 0, got {r}")
    rng = np.random.default_rng(seed)
    w, h = topology.area
    centers = rng.uniform(0.0, 1.0, size=(count, 2)) * np.asarray([w, h])
    when = _spread_epochs(rng, count, epochs)
    events: list[FaultEvent] = []
    for e, (cx, cy) in zip(when, centers.tolist()):
        covered = edges_crossing_disk(topology, (cx, cy), r)
        events.append(
            FaultEvent(
                epoch=int(e),
                kind="jam",
                edges=covered,
                center=(cx, cy),
                radius=r,
            )
        )
        end = int(e) + duration
        if end < epochs:
            events.append(
                FaultEvent(
                    epoch=end,
                    kind="jam_end",
                    edges=covered,
                    center=(cx, cy),
                    radius=r,
                )
            )
    return FaultPlan(tuple(events), epochs)


def random_campaign(
    topology: Topology,
    *,
    events: int,
    epochs: int,
    seed: int,
    crash_fraction: float = 0.2,
    weights: Optional[dict[str, float]] = None,
) -> FaultPlan:
    """A mixed seeded campaign: crashes, joins, flaps, degrades and jams.

    Draws ``events`` *scheduling decisions* from one RNG stream (so the
    whole campaign is a pure function of ``seed``), with kind
    probabilities from ``weights`` (default: flap-heavy with occasional
    crashes and jams; ``join`` defaults to 0 — opting in exercises
    grow+shrink+rewire interleavings).  Crashes are drawn without
    replacement from the *initial* population and hard capped at
    ``crash_fraction`` of it so a long campaign degrades the network
    instead of annihilating it; once the cap is hit, further crash
    draws become flaps.  Joins place a uniform random position in the
    deployment area and compile its unit-disk attach links against all
    earlier positions (including earlier arrivals); ids are assigned in
    plan order, matching :class:`FaultState`'s sequential numbering.

    Note the emitted plan can contain more than ``events`` records:
    every flap and jam schedules its own recovery event.
    """
    if events < 0:
        raise InvalidParameterError(f"events must be >= 0, got {events}")
    if not 0.0 <= crash_fraction <= 1.0:
        raise InvalidParameterError(
            f"crash_fraction must be in [0, 1], got {crash_fraction}"
        )
    kind_weights = {
        "crash": 0.1,
        "join": 0.0,
        "link_down": 0.45,
        "degrade": 0.3,
        "jam": 0.15,
    }
    if weights is not None:
        unknown = set(weights) - set(kind_weights)
        if unknown:
            raise InvalidParameterError(f"unknown campaign kinds {unknown}")
        kind_weights.update(weights)
    kinds = sorted(k for k, w in kind_weights.items() if w > 0)
    probs = np.asarray([kind_weights[k] for k in kinds], dtype=np.float64)
    probs /= probs.sum()
    rng = np.random.default_rng(seed)
    g = topology.graph
    max_crashes = int(crash_fraction * g.n)
    alive = list(range(g.n))
    positions = [tuple(map(float, p)) for p in topology.positions.tolist()]
    out: list[FaultEvent] = []
    when = _spread_epochs(rng, events, epochs)
    for i in range(events):
        epoch = int(when[i])
        kind = kinds[int(rng.choice(len(kinds), p=probs))]
        if kind == "crash" and (g.n - len(alive) >= max_crashes or not alive):
            kind = "link_down"
        if kind == "crash":
            x = alive.pop(int(rng.integers(len(alive))))
            out.append(FaultEvent(epoch=epoch, kind="crash", node=x))
        elif kind == "join":
            w, h = topology.area
            px = float(rng.uniform(0.0, w))
            py = float(rng.uniform(0.0, h))
            arr = np.asarray(positions, dtype=np.float64)
            d2 = ((arr - (px, py)) ** 2).sum(axis=1)
            x = len(positions)
            attach = tuple(
                normalize_edge(int(u), x)
                for u in np.flatnonzero(
                    d2 <= topology.radius * topology.radius
                ).tolist()
            )
            positions.append((px, py))
            out.append(
                FaultEvent(
                    epoch=epoch,
                    kind="join",
                    node=x,
                    edges=attach,
                    center=(px, py),
                )
            )
        elif kind == "link_down":
            if g.m == 0:
                continue
            (edge,) = _choose_edges(rng, g, 1, replace_=True)
            out.append(
                FaultEvent(epoch=epoch, kind="link_down", edges=(edge,))
            )
            up = epoch + int(rng.integers(1, 4))
            if up < epochs:
                out.append(
                    FaultEvent(epoch=up, kind="link_up", edges=(edge,))
                )
        elif kind == "degrade":
            if g.m == 0:
                continue
            (edge,) = _choose_edges(rng, g, 1, replace_=True)
            out.append(
                FaultEvent(
                    epoch=epoch,
                    kind="degrade",
                    edges=(edge,),
                    loss=float(rng.uniform(0.05, 0.5)),
                )
            )
        else:  # jam
            w, h = topology.area
            cx = float(rng.uniform(0.0, w))
            cy = float(rng.uniform(0.0, h))
            covered = edges_crossing_disk(topology, (cx, cy), topology.radius)
            out.append(
                FaultEvent(
                    epoch=epoch,
                    kind="jam",
                    edges=covered,
                    center=(cx, cy),
                    radius=topology.radius,
                )
            )
            end = epoch + int(rng.integers(1, 4))
            if end < epochs:
                out.append(
                    FaultEvent(
                        epoch=end,
                        kind="jam_end",
                        edges=covered,
                        center=(cx, cy),
                        radius=topology.radius,
                    )
                )
    return FaultPlan(tuple(out), epochs)


# --------------------------------------------------------------------- #
# compilation
# --------------------------------------------------------------------- #


@dataclass
class FaultState:
    """Mutable fold state compiling event batches onto a live graph.

    Tracks which nodes are dead, a per-link outage reference count (so
    overlapping jams and flaps compose correctly: a link only recovers
    when every outage holding it down has ended), the links added by
    ``join`` arrivals, and the current per-link loss overrides consumed
    by :class:`~repro.faults.delivery.LossModel`.

    The compiled graph always preserves node numbering — removals keep
    dead nodes as isolated vertices and arrivals append at the top —
    so clusterings and walks remain comparable across the whole
    campaign.
    """

    base: Graph
    graph: Graph = field(init=False)
    dead: set[int] = field(default_factory=set)
    down: Counter = field(default_factory=Counter)
    loss: dict[Edge, float] = field(default_factory=dict)
    grown: set[Edge] = field(default_factory=set)

    def __post_init__(self) -> None:
        self.graph = self.base

    @property
    def base_edges(self) -> frozenset[Edge]:
        return frozenset(self.base.edges)

    def expected_edges(self) -> set[Edge]:
        """The edge set the compiled graph *must* have right now.

        Base edges plus join-grown attach links, minus any incident to
        a dead node, minus any held down by at least one active outage.
        The chaos harness checks the compiled graph against this after
        every batch.
        """
        return {
            e
            for e in set(self.base.edges) | self.grown
            if e[0] not in self.dead
            and e[1] not in self.dead
            and self.down[e] == 0
        }

    def apply_batch(self, batch: Sequence[FaultEvent]) -> Graph:
        """Fold one epoch's events into the current graph and return it.

        Crashes are applied one node at a time through
        :meth:`~repro.net.graph.Graph.without_nodes` and arrivals
        through :meth:`~repro.net.graph.Graph.with_nodes` (both
        incremental CSR-patch + oracle-inheritance paths); all link
        changes in the batch collapse into a single
        :meth:`~repro.net.graph.Graph.with_edge_delta` call.
        """
        removed: set[Edge] = set()
        added: set[Edge] = set()
        for ev in batch:
            if ev.kind == "crash":
                x = ev.node
                if x is None:
                    raise InvalidParameterError("crash event without a node")
                if x in self.dead:
                    continue
                self.dead.add(x)
                self.graph = self.graph.without_nodes([x])
                # Loss overrides on links that no longer exist are moot.
                self.loss = {
                    e: p
                    for e, p in self.loss.items()
                    if x not in e
                }
            elif ev.kind == "join":
                x = ev.node
                if x is None:
                    raise InvalidParameterError("join event without a node id")
                if x != self.graph.n:
                    raise InvalidParameterError(
                        f"join numbering conflict: expected node "
                        f"{self.graph.n}, event plans {x} (composed "
                        "growth plans cannot interleave)"
                    )
                attach = [
                    e
                    for e in ev.edges
                    if e[0] not in self.dead and e[1] not in self.dead
                ]
                self.graph = self.graph.with_nodes(1, attach)
                self.grown.update(attach)
            elif ev.kind in ("link_down", "jam"):
                for e in ev.edges:
                    self.down[e] += 1
                    if self.down[e] == 1 and (
                        e in self.base_edges or e in self.grown
                    ):
                        removed.add(e)
                        added.discard(e)
            elif ev.kind in ("link_up", "jam_end"):
                for e in ev.edges:
                    if self.down[e] == 0:
                        continue
                    self.down[e] -= 1
                    if (
                        self.down[e] == 0
                        and (e in self.base_edges or e in self.grown)
                        and e[0] not in self.dead
                        and e[1] not in self.dead
                    ):
                        added.add(e)
                        removed.discard(e)
            elif ev.kind == "degrade":
                for e in ev.edges:
                    if ev.loss == 0.0:
                        self.loss.pop(e, None)
                    elif e[0] not in self.dead and e[1] not in self.dead:
                        self.loss[e] = ev.loss
            else:  # pragma: no cover - FaultEvent validates kinds
                raise InvalidParameterError(f"unknown fault kind {ev.kind!r}")
        # Crashes already dropped their incident edges; don't re-remove
        # (with_edge_delta would ignore it, but don't re-add either).
        removed = {
            e for e in removed if e[0] not in self.dead and e[1] not in self.dead
        }
        added = {
            e for e in added if e[0] not in self.dead and e[1] not in self.dead
        }
        if removed or added:
            self.graph = self.graph.with_edge_delta(
                added=sorted(added), removed=sorted(removed)
            )
        return self.graph

    def run(self, plan: FaultPlan) -> Iterator[tuple[int, Graph]]:
        """Apply a whole plan, yielding ``(epoch, graph)`` after each batch."""
        for epoch, batch in plan.batches():
            yield epoch, self.apply_batch(batch)
