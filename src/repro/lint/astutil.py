"""Tiny AST helpers shared by the repro-lint rules."""

from __future__ import annotations

import ast

__all__ = [
    "dotted_name",
    "numpy_aliases",
    "module_imports",
    "is_numpy_attr",
    "call_keyword",
]


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return None
    parts.append(cur.id)
    return ".".join(reversed(parts))


def numpy_aliases(tree: ast.Module) -> set[str]:
    """Local names bound to the numpy module (``np``, ``numpy``, ...)."""
    aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    aliases.add(alias.asname or "numpy")
    return aliases


def module_imports(tree: ast.Module) -> set[str]:
    """Top-level package names imported anywhere in the file."""
    out: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                out.add(alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.level == 0:
                out.add(node.module.split(".")[0])
    return out


def is_numpy_attr(
    node: ast.AST, aliases: set[str], path: str
) -> bool:
    """Whether ``node`` is ``<numpy-alias>.<path>`` (path may be dotted)."""
    name = dotted_name(node)
    if name is None:
        return False
    head, _, tail = name.partition(".")
    return head in aliases and tail == path


def call_keyword(call: ast.Call, name: str) -> ast.expr | None:
    """The value of keyword argument ``name`` on ``call``, if present."""
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None
