"""R004/R008 — hot-path loop guard and the lazy-import guard.

R004 protects the PR 2-5 vectorization wins structurally: in modules
declared hot (see :data:`~repro.lint.config.HOT_MODULES`), a statement
``for`` loop over ``range(n)`` / ``range(graph.n)`` or over
``.nodes()``/``.edges()`` is a per-node/per-edge Python sweep — the
exact shape every one of those PRs removed.  Scalar reference engines
(the ground truth the equivalence tests compare against) are allowlisted
by qualname; intrinsically sequential survivors carry a documented
pragma.  Comprehensions are deliberately not flagged: building an output
list per node is O(n) bookkeeping, not an O(n * m) sweep.

R008 keeps ``import repro`` lightweight (the PR 3 contract): ``scipy``
and ``matplotlib`` may only be imported inside functions (or under
``TYPE_CHECKING``), never at module top level in ``src/repro``.

R011 keeps durable artifacts durable: the service layer's checkpoints
and event logs are versioned JSON (crash-consistent, diffable, loadable
by any future version), so ``pickle``/``marshal``/``shelve`` never
import in ``src/repro`` — at *any* level.  R008's function-local escape
does not apply: a lazily imported pickle is just as opaque on disk.

R009 keeps failures observable: the fault-injection subsystem leans on
typed exceptions (``PartitionError``, ``RepairError``) propagating to
the layer that can act on them, so a handler that swallows everything —
bare ``except:``, or ``except Exception`` whose body is only
``pass``/``...`` — silently converts engine bugs into wrong answers.
Bare ``except:`` is always flagged (it also eats ``KeyboardInterrupt``
and ``SystemExit``); broad handlers that *do* something (log, degrade,
re-raise) are allowed.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..errors import Diagnostic
from .astutil import dotted_name
from .config import (
    DURABLE_FORMAT_MODULES,
    HOT_ALLOWLIST,
    HOT_MODULES,
    LAZY_IMPORT_MODULES,
    SRC_PREFIX,
)
from .engine import Rule, SourceFile

__all__ = [
    "DurableFormatRule",
    "HotPathLoopRule",
    "LazyImportRule",
    "SilentExceptionRule",
]


def _is_node_count(expr: ast.expr) -> bool:
    """Whether ``expr`` spells a node count: ``n``, ``graph.n``, ``self._n``."""
    if isinstance(expr, ast.Name):
        return expr.id in ("n", "num_nodes")
    if isinstance(expr, ast.Attribute):
        return expr.attr in ("n", "_n", "num_nodes")
    return False


def _loop_shape(node: ast.For) -> str | None:
    """Classify a for-statement as per-node/per-edge, else ``None``."""
    it = node.iter
    if isinstance(it, ast.Call):
        func = it.func
        if (
            isinstance(func, ast.Name)
            and func.id == "range"
            and len(it.args) == 1
            and _is_node_count(it.args[0])
        ):
            return f"per-node loop over range({ast.unparse(it.args[0])})"
        if isinstance(func, ast.Attribute) and func.attr in ("nodes", "edges"):
            return f"per-{func.attr[:-1]} loop over .{func.attr}()"
    if _is_node_count(it):
        return f"per-node loop over {ast.unparse(it)}"
    return None


class HotPathLoopRule(Rule):
    """R004: no per-node/per-edge Python loops in hot modules."""

    code = "R004"
    name = "hot-path-loops"

    def check_file(self, src: SourceFile) -> Iterator[Diagnostic]:
        reason = HOT_MODULES.get(src.rel)
        if reason is None:
            return
        assert src.tree is not None
        allowed = HOT_ALLOWLIST.get(src.rel, ())
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.For):
                continue
            shape = _loop_shape(node)
            if shape is None:
                continue
            qual = src.enclosing_qualname(node)
            if any(
                qual == entry or qual.startswith(entry + ".")
                for entry in allowed
            ):
                continue
            yield Diagnostic(
                src.rel,
                node.lineno,
                self.code,
                f"{shape} in hot module ({reason}); vectorize or move to "
                "the scalar reference engine",
            )


class LazyImportRule(Rule):
    """R008: scipy/matplotlib must not import at module top level."""

    code = "R008"
    name = "lazy-imports"

    def check_file(self, src: SourceFile) -> Iterator[Diagnostic]:
        if not src.rel.startswith(SRC_PREFIX):
            return
        assert src.tree is not None
        for node in ast.walk(src.tree):
            if not isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            if isinstance(node, ast.Import):
                heavy = [
                    a.name.split(".")[0]
                    for a in node.names
                    if a.name.split(".")[0] in LAZY_IMPORT_MODULES
                ]
            else:
                if node.level or not node.module:
                    continue
                root = node.module.split(".")[0]
                heavy = [root] if root in LAZY_IMPORT_MODULES else []
            if not heavy:
                continue
            if src.in_function(node) or self._type_checking_guarded(src, node):
                continue
            yield Diagnostic(
                src.rel,
                node.lineno,
                self.code,
                f"top-level import of {heavy[0]}; import it inside the "
                "consuming function so `import repro` stays lightweight",
            )

    @staticmethod
    def _type_checking_guarded(src: SourceFile, node: ast.AST) -> bool:
        cur = src.parents.get(node)
        while cur is not None:
            if isinstance(cur, ast.If):
                name = dotted_name(cur.test)
                if name in ("TYPE_CHECKING", "typing.TYPE_CHECKING"):
                    return True
            cur = src.parents.get(cur)
        return False


class DurableFormatRule(Rule):
    """R011: pickle/marshal/shelve never import in src/repro."""

    code = "R011"
    name = "durable-formats"

    def check_file(self, src: SourceFile) -> Iterator[Diagnostic]:
        if not src.rel.startswith(SRC_PREFIX):
            return
        assert src.tree is not None
        for node in ast.walk(src.tree):
            if not isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            if isinstance(node, ast.Import):
                banned = [
                    a.name.split(".")[0]
                    for a in node.names
                    if a.name.split(".")[0] in DURABLE_FORMAT_MODULES
                ]
            else:
                if node.level or not node.module:
                    continue
                root = node.module.split(".")[0]
                banned = [root] if root in DURABLE_FORMAT_MODULES else []
            if not banned:
                continue
            # No function-local or TYPE_CHECKING escape: any import site
            # means the format can reach a durable path.
            yield Diagnostic(
                src.rel,
                node.lineno,
                self.code,
                f"import of {banned[0]}; durable state uses the versioned "
                "JSON checkpoint/event-log formats — pickled artifacts "
                "are opaque and break across code versions",
            )


def _body_is_silent(body: list[ast.stmt]) -> bool:
    """Whether a handler body does nothing: only ``pass`` / ``...``."""
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and stmt.value.value is Ellipsis
        ):
            continue
        return False
    return True


class SilentExceptionRule(Rule):
    """R009: no bare or do-nothing broad exception handlers in src/repro."""

    code = "R009"
    name = "silent-exception"

    def check_file(self, src: SourceFile) -> Iterator[Diagnostic]:
        if not src.rel.startswith(SRC_PREFIX):
            return
        assert src.tree is not None
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield Diagnostic(
                    src.rel,
                    node.lineno,
                    self.code,
                    "bare `except:` swallows every exception including "
                    "KeyboardInterrupt/SystemExit; catch the typed "
                    "exception the failure actually raises",
                )
                continue
            name = dotted_name(node.type)
            if name in ("Exception", "BaseException") and _body_is_silent(
                node.body
            ):
                yield Diagnostic(
                    src.rel,
                    node.lineno,
                    self.code,
                    f"`except {name}` with a do-nothing body silently "
                    "swallows all failures; narrow the type or handle "
                    "(degrade, log, re-raise) what was caught",
                )
