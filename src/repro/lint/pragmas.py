"""Suppression pragmas for the repro-lint rules.

Two forms, both carried in comments so they survive formatting:

* ``# repro-lint: disable=R001`` (or ``disable=R001,R004``) on the line
  of the finding suppresses those codes for that line only;
* ``# repro-lint: disable-file=R004`` anywhere in the file suppresses the
  codes for the whole file (reserved for scalar reference modules).

``disable=all`` suppresses every rule.  Comments are located with
:mod:`tokenize`, so pragma-looking text inside string literals is inert.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import NamedTuple

__all__ = ["PragmaSet", "parse_pragmas"]

_PRAGMA_RE = re.compile(
    r"#\s*repro-lint:\s*(?P<scope>disable(?:-file)?)\s*=\s*"
    r"(?P<codes>[A-Za-z0-9_,\s]+)"
)


class PragmaSet(NamedTuple):
    """Parsed suppressions for one source file."""

    by_line: dict[int, frozenset[str]]
    file_wide: frozenset[str]

    def suppressed(self, line: int, code: str) -> bool:
        """Whether ``code`` is disabled at ``line`` (or file-wide)."""
        if "all" in self.file_wide or code in self.file_wide:
            return True
        codes = self.by_line.get(line)
        return codes is not None and ("all" in codes or code in codes)


def parse_pragmas(text: str) -> PragmaSet:
    """Extract every repro-lint pragma comment from ``text``."""
    by_line: dict[int, frozenset[str]] = {}
    file_wide: set[str] = set()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        comments = [
            (tok.start[0], tok.string)
            for tok in tokens
            if tok.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # Unparseable files are reported by the engine as R000; pragmas
        # are moot.
        return PragmaSet({}, frozenset())
    for line, comment in comments:
        match = _PRAGMA_RE.search(comment)
        if match is None:
            continue
        codes = frozenset(
            c.strip().lower() if c.strip().lower() == "all" else c.strip()
            for c in match.group("codes").split(",")
            if c.strip()
        )
        if match.group("scope") == "disable-file":
            file_wide.update(codes)
        else:
            by_line[line] = by_line.get(line, frozenset()) | codes
    return PragmaSet(by_line, frozenset(file_wide))
