"""repro-lint: project-invariant static analysis for the repro engine.

Eight AST-based rules encode the conventions the engine's correctness
and performance rest on — RNG discipline, the DIST_DTYPE contract, the
no-dense-allocation guarantee, hot-path vectorization, test coverage of
every cache-carryover certificate, ``__all__`` truthfulness, seeded
tests, and lazy heavy imports.  Run via ``repro-khop lint`` or
``make lint``; suppress single documented sites with
``# repro-lint: disable=CODE``.

The rule catalogue lives in :data:`repro.lint.config.RULE_DOCS`; the
driver in :mod:`repro.lint.engine`; findings are
:class:`repro.errors.Diagnostic` objects, shared with the CLI and the
pytest self-check through :class:`repro.errors.LintError`.
"""

from ..errors import Diagnostic, LintError
from .config import RULE_DOCS
from .engine import (
    DEFAULT_PATHS,
    LintRun,
    Rule,
    SourceFile,
    all_rules,
    run_lint,
)

__all__ = [
    "Diagnostic",
    "LintError",
    "LintRun",
    "Rule",
    "SourceFile",
    "RULE_DOCS",
    "DEFAULT_PATHS",
    "all_rules",
    "run_lint",
]
