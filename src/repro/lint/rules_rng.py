"""R001/R007 — randomness discipline in engine code and in tests.

The whole regression story (the 48-cell scenario matrix, the benchmark
trajectories, the walk-identity property tests) assumes that *every*
random draw flows through an explicit ``np.random.Generator`` seeded by
the caller.  Global RNG state (``np.random.seed``, the legacy
``RandomState``, module-level generators, the stdlib ``random`` module)
breaks that in ways no test can see locally: a draw order that depends
on import order or on which test ran first.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..errors import Diagnostic
from .astutil import dotted_name, numpy_aliases
from .config import BENCH_PREFIX, SRC_PREFIX, TEST_PREFIX
from .engine import Rule, SourceFile

__all__ = ["RngDisciplineRule", "SeededTestsRule"]


def _is_unseeded(call: ast.Call) -> bool:
    """``default_rng()`` / ``default_rng(None)`` — OS-entropy seeding."""
    if call.keywords:
        return False
    if not call.args:
        return True
    first = call.args[0]
    return isinstance(first, ast.Constant) and first.value is None


def _rng_findings(
    src: SourceFile, *, flag_module_level: bool
) -> Iterator[Diagnostic]:
    """Findings shared by the src-side and test-side RNG rules."""
    assert src.tree is not None
    aliases = numpy_aliases(src.tree)
    rel = src.rel
    for node in ast.walk(src.tree):
        if isinstance(node, ast.Attribute):
            name = dotted_name(node)
            if name is None:
                continue
            head, _, tail = name.partition(".")
            if head in aliases and tail == "random.RandomState":
                yield Diagnostic(
                    rel,
                    node.lineno,
                    "",
                    "legacy np.random.RandomState; use a seeded "
                    "np.random.Generator (default_rng(seed))",
                )
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        if name is None:
            continue
        head, _, tail = name.partition(".")
        if head in aliases and tail.startswith("random."):
            leaf = tail.rsplit(".", 1)[-1]
            if leaf == "RandomState":
                continue  # already reported at the Attribute node
            if leaf != "default_rng":
                yield Diagnostic(
                    rel,
                    node.lineno,
                    "",
                    f"global-state np.random.{leaf}() call; draw from an "
                    "explicit seeded np.random.Generator instead",
                )
                continue
        is_default_rng = (head in aliases and tail == "random.default_rng") or (
            name == "default_rng"
        )
        if not is_default_rng:
            continue
        if _is_unseeded(node):
            yield Diagnostic(
                rel,
                node.lineno,
                "",
                "unseeded default_rng(); pass an explicit seed so runs "
                "are reproducible",
            )
        elif flag_module_level and not src.in_function(node):
            yield Diagnostic(
                rel,
                node.lineno,
                "",
                "module-level RNG construction; build the generator "
                "inside the consuming function so import order cannot "
                "change draw sequences",
            )


class RngDisciplineRule(Rule):
    """R001: engine randomness must be explicit, seeded and local."""

    code = "R001"
    name = "rng-discipline"

    def check_file(self, src: SourceFile) -> Iterator[Diagnostic]:
        if not src.rel.startswith(SRC_PREFIX):
            return
        for diag in _rng_findings(src, flag_module_level=True):
            yield Diagnostic(diag.path, diag.line, self.code, diag.message)


class SeededTestsRule(Rule):
    """R007: tests/benchmarks may only draw from seeded generators."""

    code = "R007"
    name = "seeded-tests"

    def check_file(self, src: SourceFile) -> Iterator[Diagnostic]:
        if not src.rel.startswith((TEST_PREFIX, BENCH_PREFIX)):
            return
        assert src.tree is not None
        for diag in _rng_findings(src, flag_module_level=False):
            yield Diagnostic(diag.path, diag.line, self.code, diag.message)
        # The stdlib `random` module is global state end to end; ban any
        # attribute call on it once the module is imported by that name.
        imports_random = any(
            isinstance(node, ast.Import)
            and any(a.name == "random" and a.asname is None for a in node.names)
            for node in ast.walk(src.tree)
        )
        if not imports_random:
            return
        for node in ast.walk(src.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "random"
            ):
                yield Diagnostic(
                    src.rel,
                    node.lineno,
                    self.code,
                    f"bare random.{node.func.attr}() draws from global "
                    "state; use np.random.default_rng(seed)",
                )
