"""R002/R003 — distance-dtype discipline and the dense-allocation guard.

R002 keeps every hop-distance array on ``DIST_DTYPE`` (the int32 oracle
contract from ``net/oracle.py``): cache byte budgets, the UNREACHABLE
sentinel and the inherit_* exactness certificates all assume one storage
width.  The rule is name-aware — only *distance-named* arrays
(``dist``/``hop``/``shortest``/... components) are checked, so int64
index arrays stay legal — and only integer dtype literals are flagged,
so float euclidean geometry is exempt.

R003 bans square ``(x, x)``-shaped allocations outside the opt-in dense
backend: the PR 1 result (no O(n^2) memory anywhere on the lazy path) is
an invariant, not an accident.  Shapes are compared textually, which
catches ``(n, n)``, ``(idx.size, idx.size)`` and friends while leaving
genuinely rectangular buffers alone.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..errors import Diagnostic
from .astutil import call_keyword, dotted_name, numpy_aliases
from .config import (
    BANNED_DIST_DTYPES,
    DENSE_ALLOWLIST,
    DIST_NAME_RE,
    DTYPE_RULE_PREFIXES,
    SRC_PREFIX,
)
from .engine import Rule, SourceFile

__all__ = ["DistDtypeRule", "DenseAllocationRule"]

#: numpy array constructors and the positional index of their dtype arg
#: (None = keyword-only in practice).
_CREATORS: dict[str, int | None] = {
    "zeros": 1,
    "empty": 1,
    "ones": 1,
    "full": 2,
    "asarray": 1,
    "array": 1,
    "arange": None,
    "fromiter": 1,
    "zeros_like": None,
    "empty_like": None,
    "full_like": None,
    "ones_like": None,
}

_SQUARE_ALLOCATORS = frozenset({"zeros", "empty", "ones", "full"})


def _numpy_call_leaf(call: ast.Call, aliases: set[str]) -> str | None:
    """``zeros`` for ``np.zeros(...)``; None for non-numpy calls."""
    name = dotted_name(call.func)
    if name is None:
        return None
    head, _, tail = name.partition(".")
    if head not in aliases or "." in tail:
        return None
    return tail or None


def _banned_dtype(node: ast.expr | None, aliases: set[str]) -> str | None:
    """The offending dtype spelling when ``node`` is a banned literal."""
    if node is None:
        return None
    name = dotted_name(node)
    if name is None:
        return None
    head, _, tail = name.partition(".")
    if head in aliases and tail in BANNED_DIST_DTYPES:
        return name
    return None


def _target_names(node: ast.AST) -> list[str]:
    """Assignment-target identifiers (tuple targets flattened)."""
    out: list[str] = []
    stack = [node]
    while stack:
        cur = stack.pop()
        if isinstance(cur, ast.Name):
            out.append(cur.id)
        elif isinstance(cur, ast.Attribute):
            out.append(cur.attr)
        elif isinstance(cur, (ast.Tuple, ast.List)):
            stack.extend(cur.elts)
        elif isinstance(cur, ast.Starred):
            stack.append(cur.value)
    return out


def _is_dist_named(names: list[str]) -> bool:
    return any(DIST_NAME_RE.search(n) for n in names)


class DistDtypeRule(Rule):
    """R002: distance/hop arrays must be created/cast with DIST_DTYPE."""

    code = "R002"
    name = "dist-dtype"

    def check_file(self, src: SourceFile) -> Iterator[Diagnostic]:
        if not src.rel.startswith(DTYPE_RULE_PREFIXES):
            return
        assert src.tree is not None
        aliases = numpy_aliases(src.tree)
        if not aliases:
            return

        for node in ast.walk(src.tree):
            # np.int16 anywhere in these modules is the legacy pre-PR 2
            # distance ceiling leaking back in.
            if isinstance(node, ast.Attribute):
                name = dotted_name(node)
                if name is not None:
                    head, _, tail = name.partition(".")
                    if head in aliases and tail == "int16":
                        yield Diagnostic(
                            src.rel,
                            node.lineno,
                            self.code,
                            "np.int16 is the retired distance ceiling; "
                            "distances are DIST_DTYPE (int32) since PR 2",
                        )
                continue
            if not isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                continue
            if isinstance(node, ast.Assign):
                targets: list[ast.AST] = list(node.targets)
            else:
                targets = [node.target]
            names = []
            for t in targets:
                names.extend(_target_names(t))
            if not _is_dist_named(names) or node.value is None:
                continue
            for diag in self._value_findings(src, node.value, aliases, names):
                yield diag

        # Casts not bound to an assignment: `return dists.astype(np.int64)`
        # and friends, flagged when the *receiver* is distance-named.
        for node in ast.walk(src.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "astype"
                and node.args
            ):
                continue
            recv = _target_names(node.func.value)
            if not _is_dist_named(recv):
                continue
            bad = _banned_dtype(node.args[0], aliases)
            if bad is not None:
                yield Diagnostic(
                    src.rel,
                    node.lineno,
                    self.code,
                    f"distance array cast with {bad}; use DIST_DTYPE",
                )

    def _value_findings(
        self,
        src: SourceFile,
        value: ast.expr,
        aliases: set[str],
        names: list[str],
    ) -> Iterator[Diagnostic]:
        label = next((n for n in names if DIST_NAME_RE.search(n)), names[0])
        for node in ast.walk(value):
            if not isinstance(node, ast.Call):
                continue
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "astype"
                and node.args
            ):
                bad = _banned_dtype(node.args[0], aliases)
                if bad is not None:
                    yield Diagnostic(
                        src.rel,
                        node.lineno,
                        self.code,
                        f"distance array '{label}' cast with {bad}; use "
                        "DIST_DTYPE",
                    )
                continue
            leaf = _numpy_call_leaf(node, aliases)
            if leaf in _CREATORS:
                dtype = call_keyword(node, "dtype")
                pos = _CREATORS[leaf]
                if dtype is None and pos is not None and len(node.args) > pos:
                    dtype = node.args[pos]
                bad = _banned_dtype(dtype, aliases)
                if bad is not None:
                    yield Diagnostic(
                        src.rel,
                        node.lineno,
                        self.code,
                        f"distance array '{label}' created with dtype "
                        f"{bad}; use DIST_DTYPE",
                    )
            elif leaf in BANNED_DIST_DTYPES:
                # scalar cast: shortest = np.int64(x)
                yield Diagnostic(
                    src.rel,
                    node.lineno,
                    self.code,
                    f"distance value '{label}' cast with np.{leaf}; use "
                    "DIST_DTYPE",
                )


class DenseAllocationRule(Rule):
    """R003: no square allocations outside the dense-backend allowlist."""

    code = "R003"
    name = "dense-allocation"

    def check_file(self, src: SourceFile) -> Iterator[Diagnostic]:
        if not src.rel.startswith(SRC_PREFIX):
            return
        assert src.tree is not None
        aliases = numpy_aliases(src.tree)
        if not aliases:
            return
        allowed = DENSE_ALLOWLIST.get(src.rel, ())
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            leaf = _numpy_call_leaf(node, aliases)
            if leaf not in _SQUARE_ALLOCATORS or not node.args:
                continue
            shape = node.args[0]
            if not (isinstance(shape, ast.Tuple) and len(shape.elts) == 2):
                continue
            a, b = shape.elts
            if isinstance(a, ast.Constant) and isinstance(b, ast.Constant):
                continue  # (0, 0)-style literal sentinels are not O(n^2)
            if ast.unparse(a) != ast.unparse(b):
                continue
            qual = src.enclosing_qualname(node)
            if any(
                qual == entry or qual.startswith(entry + ".")
                for entry in allowed
            ):
                continue
            yield Diagnostic(
                src.rel,
                node.lineno,
                self.code,
                f"square np.{leaf}(({ast.unparse(a)}, {ast.unparse(b)})) "
                "allocation outside the dense backend; the lazy path must "
                "stay O(m + budgets)",
            )
