"""Project tables consumed by the repro-lint rules.

Everything path-shaped is a POSIX path relative to the repository root
(``src/repro/...``), matching :attr:`SourceFile.rel`.  Keeping the
allowlists here — instead of scattering pragmas — makes the set of
sanctioned exceptions reviewable in one place; pragmas are reserved for
single-site, comment-documented cases.
"""

from __future__ import annotations

import re

__all__ = [
    "RULE_DOCS",
    "SRC_PREFIX",
    "TEST_PREFIX",
    "BENCH_PREFIX",
    "DTYPE_RULE_PREFIXES",
    "DIST_NAME_RE",
    "DIST_DTYPE_NAME",
    "BANNED_DIST_DTYPES",
    "DENSE_ALLOWLIST",
    "HOT_MODULES",
    "HOT_ALLOWLIST",
    "LAZY_IMPORT_MODULES",
    "DURABLE_FORMAT_MODULES",
    "COVERAGE_METHOD_RE",
    "TIMING_ALLOWLIST",
]

#: Rule code -> (title, what it protects).  The single source of truth
#: for ``repro-khop lint --list-rules`` and the README table.
RULE_DOCS: dict[str, tuple[str, str]] = {
    "R000": (
        "parse-failure",
        "every linted file must be valid Python (a broken file silently "
        "escapes all other rules)",
    ),
    "R001": (
        "rng-discipline",
        "all engine randomness flows through an explicit, seeded, "
        "caller-supplied np.random.Generator — no global state, no "
        "legacy RandomState, no unseeded or module-level construction",
    ),
    "R002": (
        "dist-dtype",
        "distance/hop arrays in net/, traffic/ and maintenance/ are "
        "created and cast with DIST_DTYPE, so the int32 oracle contract "
        "(sentinel, memory budgets, cache byte accounting) cannot drift "
        "per-module",
    ),
    "R003": (
        "dense-allocation",
        "no O(n^2) square allocations sneak in outside the opt-in dense "
        "backend — the PR 1 scaling win depends on it",
    ),
    "R004": (
        "hot-path-loops",
        "modules declared hot stay vectorized: no per-node/per-edge "
        "Python for-loops outside the allowlisted scalar reference "
        "engines",
    ),
    "R005": (
        "inheritance-coverage",
        "every public inherit_*/with_*delta cache-carryover method has "
        "at least one test exercising it — an untested exactness "
        "certificate is a silent-wrong-answer factory",
    ),
    "R006": (
        "all-consistency",
        "__all__ names exist and package __init__ re-exports resolve, "
        "so `from repro.x import *` and the documented API stay truthful",
    ),
    "R007": (
        "seeded-tests",
        "tests and benchmarks draw randomness only from seeded "
        "generators — reproducibility of the regression matrix depends "
        "on it",
    ),
    "R008": (
        "lazy-imports",
        "scipy/matplotlib never import at module top level inside "
        "src/repro, keeping `import repro` lightweight (PR 3 contract)",
    ),
    "R009": (
        "silent-exception",
        "no silently swallowed exceptions in src/repro: bare `except:` "
        "is always a bug, and a pass-only `except Exception` body hides "
        "real failures — fault handling must be typed and observable "
        "(PartitionError, RepairError, ...)",
    ),
    "R010": (
        "timing-discipline",
        "no raw clock reads (time.time/perf_counter/...) in src/repro "
        "outside the obs layer — stage timing flows through repro.obs "
        "spans so every measurement lands in one trace with one "
        "attribution model (benchmarks/tests exempt)",
    ),
    "R011": (
        "durable-formats",
        "pickle/marshal/shelve never import in src/repro, at any level "
        "— durable state (checkpoints, event logs) is versioned JSON, "
        "so every artifact stays inspectable, diffable and loadable "
        "across code versions (PR 9 contract)",
    ),
}

SRC_PREFIX = "src/repro/"
TEST_PREFIX = "tests/"
BENCH_PREFIX = "benchmarks/"

#: R002 applies to the modules that share the oracle's distance arrays.
DTYPE_RULE_PREFIXES: tuple[str, ...] = (
    "src/repro/net/",
    "src/repro/traffic/",
    "src/repro/maintenance/",
)

#: Names that denote hop-distance-valued arrays.  Integer-typed creations
#: or casts of these must use DIST_DTYPE; float arrays (euclidean
#: geometry) are exempt by construction.
DIST_NAME_RE = re.compile(
    r"(^|_)(dist|dists|distance|distances|hop|hops|depth|depths|"
    r"shortest|ecc)(_|$)"
)

DIST_DTYPE_NAME = "DIST_DTYPE"

#: Integer numpy dtype literals banned on distance-named arrays
#: (int32 included: spell it DIST_DTYPE so a future width change is a
#: one-line edit).
BANNED_DIST_DTYPES = frozenset(
    {
        "int8",
        "int16",
        "int32",
        "int64",
        "uint8",
        "uint16",
        "uint32",
        "uint64",
        "intp",
        "short",
        "longlong",
    }
)

#: R003: (module rel-path) -> qualname prefixes allowed to allocate
#: square matrices.  The dense backend is the *point* of the exception;
#: ``pairwise_distances`` returns an all-pairs matrix over an explicit
#: node subset, which is exactly what its callers asked for.
DENSE_ALLOWLIST: dict[str, tuple[str, ...]] = {
    "src/repro/net/oracle.py": (
        "_dense_all_pairs",
        "DenseDistanceOracle",
        "DistanceOracle.pairwise_distances",
    ),
    "src/repro/net/labeling.py": (
        "LandmarkDistanceOracle.pairwise_distances",
    ),
}

#: R004: modules whose hot paths were vectorized in PRs 2-5; a per-node
#: Python loop reappearing here is a performance regression.  Values are
#: the reason shown in the diagnostic.
HOT_MODULES: dict[str, str] = {
    "src/repro/net/oracle.py": "bit-packed BFS kernel / lazy oracle (PR 2/4)",
    "src/repro/net/labeling.py": "vectorized PLL construction (PR 4)",
    "src/repro/core/clustering.py": "batched k-hop clustering engine (PR 4)",
    "src/repro/traffic/router.py": "batch flow routing (PR 3)",
    "src/repro/traffic/load.py": "vectorized load accounting (PR 3)",
}

#: R004: qualname prefixes inside hot modules that *are* the scalar
#: reference engines the equivalence tests compare against.
HOT_ALLOWLIST: dict[str, tuple[str, ...]] = {
    "src/repro/net/labeling.py": ("_build_pruned_labels_reference",),
}

#: R008: top-level imports of these packages are banned in src/repro.
LAZY_IMPORT_MODULES = frozenset({"scipy", "matplotlib"})

#: R011: serialization modules banned in src/repro at *any* import level
#: (unlike R008 there is no function-local escape — a lazily imported
#: pickle is just as opaque on disk as an eager one).
DURABLE_FORMAT_MODULES = frozenset({"pickle", "cPickle", "marshal", "shelve"})

#: R005: public cache-carryover method names that must be test-covered.
COVERAGE_METHOD_RE = re.compile(r"^(inherit_\w+|with_\w*delta)$")

#: R010: src/repro modules (beyond ``src/repro/obs/``) with a standing,
#: reviewed reason to read clocks directly.  Empty on purpose: new
#: entries need the same review a pragma would get, in one greppable
#: place.
TIMING_ALLOWLIST: tuple[str, ...] = ()
