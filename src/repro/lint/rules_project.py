"""R005/R006 — whole-project cross-checks.

R005 (inheritance coverage) is the Python analogue of tket's
compile-time distance-cache contracts: every ``inherit_*``/``with_*delta``
method is an *exactness certificate* — it promises that carried-over
cached state equals what a fresh rebuild would compute.  A certificate
nobody tests is a silent-wrong-answer factory, so the rule demands that
for each public such method there is at least one test module that both
calls ``.<method>(...)`` and mentions the defining class.

R006 (``__all__`` consistency) checks, purely statically, that every
name exported by a module's ``__all__`` is actually bound at module
level (including conditional and ``try`` branches), that ``__all__``
holds no duplicates, and therefore that package ``__init__`` re-export
chains resolve.
"""

from __future__ import annotations

import ast
from typing import Iterator, Sequence

from ..errors import Diagnostic
from .config import COVERAGE_METHOD_RE, SRC_PREFIX, TEST_PREFIX
from .engine import Rule, SourceFile

__all__ = ["InheritanceCoverageRule", "AllConsistencyRule"]


def _module_bindings(tree: ast.Module) -> set[str]:
    """Names bound at module level (descending into if/try/with bodies)."""
    names: set[str] = set()

    def visit(body: Sequence[ast.stmt]) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                names.add(node.name)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    names.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if alias.name == "*":
                        names.add("*")
                    else:
                        names.add(alias.asname or alias.name)
            elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    stack: list[ast.AST] = [target]
                    while stack:
                        cur = stack.pop()
                        if isinstance(cur, ast.Name):
                            names.add(cur.id)
                        elif isinstance(cur, (ast.Tuple, ast.List)):
                            stack.extend(cur.elts)
                        elif isinstance(cur, ast.Starred):
                            stack.append(cur.value)
            elif isinstance(node, ast.If):
                visit(node.body)
                visit(node.orelse)
            elif isinstance(node, ast.Try):
                visit(node.body)
                visit(node.orelse)
                visit(node.finalbody)
                for handler in node.handlers:
                    visit(handler.body)
            elif isinstance(node, (ast.With, ast.For, ast.While)):
                visit(node.body)

    visit(tree.body)
    return names


def _all_literal(tree: ast.Module) -> tuple[int, list[tuple[str, int]]] | None:
    """``(__all__ line, [(name, element line), ...])`` if statically known."""
    for node in tree.body:
        target = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
        elif isinstance(node, ast.AnnAssign):
            target = node.target
        if not (isinstance(target, ast.Name) and target.id == "__all__"):
            continue
        value = node.value
        if not isinstance(value, (ast.List, ast.Tuple)):
            return None
        names: list[tuple[str, int]] = []
        for elt in value.elts:
            if not (isinstance(elt, ast.Constant) and isinstance(elt.value, str)):
                return None
            names.append((elt.value, elt.lineno))
        return node.lineno, names
    return None


class AllConsistencyRule(Rule):
    """R006: __all__ entries exist; package re-exports resolve."""

    code = "R006"
    name = "all-consistency"

    def check_file(self, src: SourceFile) -> Iterator[Diagnostic]:
        if not src.rel.startswith(SRC_PREFIX):
            return
        assert src.tree is not None
        parsed = _all_literal(src.tree)
        if parsed is None:
            return
        _, entries = parsed
        bindings = _module_bindings(src.tree)
        if "*" in bindings:
            return  # star re-export: membership is not statically decidable
        seen: set[str] = set()
        for name, line in entries:
            if name in seen:
                yield Diagnostic(
                    src.rel,
                    line,
                    self.code,
                    f"duplicate __all__ entry '{name}'",
                )
                continue
            seen.add(name)
            if name not in bindings:
                yield Diagnostic(
                    src.rel,
                    line,
                    self.code,
                    f"__all__ exports '{name}' but the module never binds "
                    "it; the import-star/API surface is lying",
                )


class InheritanceCoverageRule(Rule):
    """R005: every public cache-carryover method is test-exercised."""

    code = "R005"
    name = "inheritance-coverage"

    def check_project(
        self, files: Sequence[SourceFile]
    ) -> Iterator[Diagnostic]:
        src_files = [f for f in files if f.rel.startswith(SRC_PREFIX)]
        test_files = [f for f in files if f.rel.startswith(TEST_PREFIX)]
        if not src_files or not test_files:
            return

        # (class, method) definitions to cover.
        defs: list[tuple[str, str, str, int]] = []
        for src in src_files:
            assert src.tree is not None
            for node in ast.walk(src.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                for item in node.body:
                    if (
                        isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                        and COVERAGE_METHOD_RE.match(item.name)
                        and not item.name.startswith("_")
                    ):
                        defs.append((src.rel, node.name, item.name, item.lineno))

        # Per test module: the method names it calls and the identifiers
        # it mentions (class references arrive as Names or Attributes).
        refs: list[tuple[set[str], set[str]]] = []
        for test in test_files:
            assert test.tree is not None
            called: set[str] = set()
            mentioned: set[str] = set()
            for node in ast.walk(test.tree):
                if isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Attribute
                ):
                    called.add(node.func.attr)
                if isinstance(node, ast.Name):
                    mentioned.add(node.id)
                elif isinstance(node, ast.Attribute):
                    mentioned.add(node.attr)
                elif isinstance(node, (ast.Import, ast.ImportFrom)):
                    for alias in node.names:
                        mentioned.add(alias.asname or alias.name.split(".")[-1])
            refs.append((called, mentioned))

        for rel, cls, method, line in defs:
            covered = any(
                method in called and cls in mentioned
                for called, mentioned in refs
            )
            if not covered:
                yield Diagnostic(
                    rel,
                    line,
                    self.code,
                    f"cache-carryover method {cls}.{method} has no test "
                    "that both names the class and calls the method; add "
                    "an inherited-vs-fresh equivalence test",
                )
