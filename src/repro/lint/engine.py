"""The repro-lint driver: file loading, rule dispatch, pragma filtering.

A lint run parses every ``.py`` file under the requested paths once,
hands the parsed :class:`SourceFile` objects to each rule, filters the
raw findings through the pragma layer and returns them in report order.
Rules come in two shapes: per-file (``check_file``) and whole-project
(``check_project`` — e.g. the test-coverage cross-check, which must see
``src/`` and ``tests/`` together).

Everything is plain ``ast``/``tokenize`` — no third-party dependency —
so the suite runs anywhere the library itself runs, and fast: one parse
per file, one AST walk per (file, rule).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from functools import cached_property
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from ..errors import Diagnostic
from .config import RULE_DOCS
from .pragmas import PragmaSet, parse_pragmas

__all__ = [
    "SourceFile",
    "Rule",
    "all_rules",
    "collect_files",
    "load_file",
    "run_lint",
    "DEFAULT_PATHS",
]

#: What a bare ``repro-khop lint`` / ``make lint`` covers.
DEFAULT_PATHS: tuple[str, ...] = ("src", "tests", "benchmarks")


@dataclass
class SourceFile:
    """One parsed source file plus the derived lookups rules need."""

    rel: str  #: POSIX path relative to the lint root
    text: str
    tree: ast.Module | None  #: ``None`` when the file failed to parse
    pragmas: PragmaSet

    @cached_property
    def parents(self) -> dict[ast.AST, ast.AST]:
        """Child -> parent map over the whole tree."""
        out: dict[ast.AST, ast.AST] = {}
        if self.tree is not None:
            for parent in ast.walk(self.tree):
                for child in ast.iter_child_nodes(parent):
                    out[child] = parent
        return out

    @cached_property
    def qualnames(self) -> dict[ast.AST, str]:
        """Function/class def node -> dotted qualname (``Cls.method``)."""
        out: dict[ast.AST, str] = {}

        def visit(node: ast.AST, prefix: str) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                ):
                    qual = f"{prefix}{child.name}"
                    out[child] = qual
                    visit(child, qual + ".")
                else:
                    visit(child, prefix)

        if self.tree is not None:
            visit(self.tree, "")
        return out

    def enclosing_qualname(self, node: ast.AST) -> str:
        """Qualname of the innermost def/class containing ``node`` ('' = module)."""
        cur = self.parents.get(node)
        while cur is not None:
            qual = self.qualnames.get(cur)
            if qual is not None:
                return qual
            cur = self.parents.get(cur)
        return ""

    def in_function(self, node: ast.AST) -> bool:
        """Whether ``node`` sits inside any function body."""
        cur = self.parents.get(node)
        while cur is not None:
            if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return True
            cur = self.parents.get(cur)
        return False


class Rule:
    """Base class: a stable code plus per-file and/or project checks."""

    code: str = ""
    name: str = ""

    @property
    def summary(self) -> str:
        """The one-line description from the rule-docs table."""
        return RULE_DOCS[self.code][1]

    def check_file(self, src: SourceFile) -> Iterator[Diagnostic]:
        return iter(())

    def check_project(
        self, files: Sequence[SourceFile]
    ) -> Iterator[Diagnostic]:
        return iter(())


def all_rules() -> list[Rule]:
    """One instance of every shipped rule, in code order."""
    from .rules_arrays import DenseAllocationRule, DistDtypeRule
    from .rules_project import AllConsistencyRule, InheritanceCoverageRule
    from .rules_rng import RngDisciplineRule, SeededTestsRule
    from .rules_structure import (
        DurableFormatRule,
        HotPathLoopRule,
        LazyImportRule,
        SilentExceptionRule,
    )
    from .rules_timing import TimingDisciplineRule

    rules: list[Rule] = [
        RngDisciplineRule(),
        DistDtypeRule(),
        DenseAllocationRule(),
        HotPathLoopRule(),
        InheritanceCoverageRule(),
        AllConsistencyRule(),
        SeededTestsRule(),
        LazyImportRule(),
        SilentExceptionRule(),
        TimingDisciplineRule(),
        DurableFormatRule(),
    ]
    return sorted(rules, key=lambda r: r.code)


def collect_files(root: Path, paths: Iterable[str]) -> list[Path]:
    """Every ``.py`` file under ``root/<path>`` for each requested path."""
    seen: set[Path] = set()
    out: list[Path] = []
    for rel in paths:
        target = (root / rel).resolve()
        if target.is_file() and target.suffix == ".py":
            candidates: Iterable[Path] = [target]
        elif target.is_dir():
            candidates = sorted(target.rglob("*.py"))
        else:
            continue
        for path in candidates:
            if "__pycache__" in path.parts or path in seen:
                continue
            seen.add(path)
            out.append(path)
    return out


def load_file(root: Path, path: Path) -> SourceFile:
    """Parse one file into a :class:`SourceFile` (tree=None on errors)."""
    text = path.read_text(encoding="utf-8")
    rel = path.resolve().relative_to(root.resolve()).as_posix()
    try:
        tree: ast.Module | None = ast.parse(text, filename=rel)
    except SyntaxError:
        tree = None
    return SourceFile(
        rel=rel, text=text, tree=tree, pragmas=parse_pragmas(text)
    )


@dataclass
class LintRun:
    """The outcome of one lint invocation."""

    diagnostics: list[Diagnostic]
    files_checked: int
    suppressed: int = 0
    rules: list[Rule] = field(default_factory=list)


def run_lint(
    root: Path | str,
    paths: Sequence[str] | None = None,
    rules: Sequence[Rule] | None = None,
) -> LintRun:
    """Lint ``paths`` (relative to ``root``) with ``rules`` (default: all).

    Returns the pragma-filtered findings sorted into ``file:line:code``
    report order.  Files that fail to parse surface as ``R000`` findings
    and are excluded from the other rules.
    """
    root = Path(root)
    active = list(rules) if rules is not None else all_rules()
    files = [
        load_file(root, p)
        for p in collect_files(root, paths or DEFAULT_PATHS)
    ]

    raw: list[Diagnostic] = []
    for src in files:
        if src.tree is None:
            raw.append(
                Diagnostic(src.rel, 1, "R000", "file does not parse")
            )
            continue
        for rule in active:
            raw.extend(rule.check_file(src))
    parsed = [f for f in files if f.tree is not None]
    for rule in active:
        raw.extend(rule.check_project(parsed))

    by_rel = {f.rel: f for f in files}
    kept: list[Diagnostic] = []
    suppressed = 0
    for diag in raw:
        src = by_rel.get(diag.path)
        if src is not None and src.pragmas.suppressed(diag.line, diag.code):
            suppressed += 1
            continue
        kept.append(diag)
    kept.sort()
    return LintRun(
        diagnostics=kept,
        files_checked=len(files),
        suppressed=suppressed,
        rules=active,
    )
