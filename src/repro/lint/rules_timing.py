"""R010 — timing discipline: wall-clock reads live in the obs layer only.

PR 8 moved all stage timing behind :mod:`repro.obs` spans: one clock
(``time.perf_counter``), one attribution model (nested self-times that
telescope to the root), one export format.  A stray ``time.time()`` in
engine code bypasses all of that — it produces a number no trace can
see, tempts ad-hoc printouts, and (worse) invites timing-dependent
control flow into deterministic simulation code.  This rule bans direct
clock reads in ``src/repro`` outside ``src/repro/obs/``; benchmarks and
tests are out of scope (the bench harness may keep raw timers where it
needs process CPU time).  Single-site exceptions go through the usual
pragma; reviewable standing exceptions through
:data:`~repro.lint.config.TIMING_ALLOWLIST`.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..errors import Diagnostic
from .astutil import dotted_name
from .config import SRC_PREFIX, TIMING_ALLOWLIST
from .engine import Rule, SourceFile

__all__ = ["TimingDisciplineRule"]

#: ``time``-module clock reads (measurement, not formatting — strftime,
#: gmtime, sleep and friends stay legal everywhere).
_BANNED_CLOCKS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
        "monotonic",
        "monotonic_ns",
    }
)

#: The one subtree allowed to read clocks (the span tracer itself).
_OBS_PREFIX = "src/repro/obs/"


def _time_aliases(tree: ast.Module) -> set[str]:
    """Local names bound to the ``time`` module (``time``, aliases)."""
    aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "time":
                    aliases.add(alias.asname or "time")
    return aliases


class TimingDisciplineRule(Rule):
    """R010: engine code measures time through obs spans, not raw clocks."""

    code = "R010"
    name = "timing-discipline"

    def check_file(self, src: SourceFile) -> Iterator[Diagnostic]:
        rel = src.rel
        if not rel.startswith(SRC_PREFIX) or rel.startswith(_OBS_PREFIX):
            return
        if rel in TIMING_ALLOWLIST:
            return
        assert src.tree is not None
        aliases = _time_aliases(src.tree)
        for node in ast.walk(src.tree):
            if isinstance(node, ast.ImportFrom):
                if node.module == "time" and node.level == 0:
                    for alias in node.names:
                        if alias.name in _BANNED_CLOCKS:
                            yield Diagnostic(
                                rel,
                                node.lineno,
                                self.code,
                                f"`from time import {alias.name}` in engine "
                                "code; measure stages with repro.obs.span() "
                                "instead of raw clocks",
                            )
                continue
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None or "." not in name:
                continue
            head, _, tail = name.partition(".")
            if head in aliases and tail in _BANNED_CLOCKS:
                yield Diagnostic(
                    rel,
                    node.lineno,
                    self.code,
                    f"direct {head}.{tail}() clock read in engine code; "
                    "measure stages with repro.obs.span() instead",
                )
