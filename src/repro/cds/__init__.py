"""k-hop CDS assembly, verification and the broadcast application."""

from .broadcast import BroadcastStats, backbone_broadcast, blind_flood
from .builder import KhopCDS, build_cds, intra_cluster_parents
from .routing import HeadRouter, RoutingReport, route, routing_report, table_sizes
from .verify import (
    check_backbone_connected,
    check_domination,
    check_gateways_are_members,
    check_links_realized,
    verify_backbone,
)

__all__ = [
    "KhopCDS",
    "build_cds",
    "intra_cluster_parents",
    "verify_backbone",
    "check_backbone_connected",
    "check_domination",
    "check_links_realized",
    "check_gateways_are_members",
    "BroadcastStats",
    "blind_flood",
    "backbone_broadcast",
    "HeadRouter",
    "RoutingReport",
    "route",
    "routing_report",
    "table_sizes",
]
