"""Backbone verification — the executable form of Theorems 1 and 2.

Checks that a produced backbone really is a **connected k-hop CDS**:

* the CDS node set induces a connected subgraph of ``G`` (Theorem 2's
  conclusion for the gateway algorithms);
* heads k-hop dominate every node (from the clustering);
* every selected virtual link is fully realized inside the CDS (its interior
  nodes are gateways), so the abstract cluster graph G' the theorems argue
  about actually exists in the network.

Every pipeline result in every test and benchmark passes through
:func:`verify_backbone` — reproduced numbers are only reported for verified
backbones.
"""

from __future__ import annotations

from ..core.pipeline import BackboneResult
from ..errors import ValidationError
from ..net.graph import UNREACHABLE

__all__ = [
    "check_backbone_connected",
    "check_domination",
    "check_links_realized",
    "check_gateways_are_members",
    "verify_backbone",
]


def check_backbone_connected(result: BackboneResult) -> None:
    """Heads + gateways induce a connected subgraph of G."""
    if not result.clustering.graph.is_connected_subset(result.cds):
        raise ValidationError(
            f"{result.algorithm}: CDS of size {result.cds_size} is not "
            "connected in G"
        )


def check_domination(result: BackboneResult) -> None:
    """Every node is within k hops of some clusterhead.

    Computed as a union of per-head k-balls (cost scales with the covered
    region, not ``n × heads``).
    """
    g = result.clustering.graph
    k = result.clustering.k
    covered = set(g.nodes_within(result.heads, k))
    for u in g.nodes():
        if u not in covered:
            raise ValidationError(
                f"{result.algorithm}: node {u} is more than k={k} hops "
                "from every clusterhead"
            )


def check_links_realized(result: BackboneResult) -> None:
    """Interiors of selected virtual links are all gateways; paths valid."""
    g = result.clustering.graph
    for a, b in sorted(result.selected_links):
        link = result.virtual_graph.link(a, b)
        # consecutive path nodes must be G-edges
        for x, y in zip(link.path, link.path[1:]):
            if not g.has_edge(x, y):
                raise ValidationError(
                    f"{result.algorithm}: virtual link {a}-{b} uses "
                    f"non-edge ({x},{y})"
                )
        missing = set(link.interior) - result.gateways
        if missing:
            raise ValidationError(
                f"{result.algorithm}: link {a}-{b} interior nodes "
                f"{sorted(missing)} were not marked as gateways"
            )
        d = g.hop_distance(a, b)
        if d >= UNREACHABLE or link.weight != d:
            raise ValidationError(
                f"{result.algorithm}: link {a}-{b} has weight {link.weight}, "
                f"graph distance is {d} — not a shortest path"
            )


def check_gateways_are_members(result: BackboneResult) -> None:
    """Gateways are non-clusterhead nodes (members)."""
    heads = set(result.heads)
    bad = sorted(result.gateways & heads)
    if bad:
        raise ValidationError(
            f"{result.algorithm}: clusterheads {bad} were marked as gateways"
        )


def verify_backbone(result: BackboneResult) -> None:
    """Run the full battery of backbone checks (raises on first failure)."""
    check_gateways_are_members(result)
    check_links_realized(result)
    check_backbone_connected(result)
    check_domination(result)
