"""Cluster-based routing over the k-hop backbone (§1/§2 motivation).

The paper motivates clustering with routing: "helping to achieve smaller
routing tables and fewer route updates" ((α,t)-cluster, the B-protocol,
MMWN).  This module quantifies that on any produced backbone:

* **flat link-state baseline** — every node stores a route to every other
  node: table size n-1, stretch 1 by definition;
* **cluster-based routing** — a node stores routes only to its own
  cluster's members plus its head; heads additionally store the backbone
  table (one entry per clusterhead).  A packet travels source -> its head
  (canonical path), head -> destination head over selected virtual links
  (shortest path in the cluster graph G'), destination head -> destination.

The reusable primitive is :class:`HeadRouter`: the head adjacency built
once per backbone, one cached Dijkstra tree per *source* head (serving
every destination from that cluster), and a per-head-pair cache of the
fully expanded gateway walk.  :func:`route` builds one transient router
per call (the scalar, embarrassingly-recomputing form);
:class:`repro.traffic.router.BatchRouter` shares a single
:class:`HeadRouter` across thousands of flows — that reuse is the whole
batch-routing speedup.

:func:`route` returns the actual walk; :func:`routing_report` samples
source/destination pairs and reports mean/max stretch and table sizes —
the table-size collapse is the win, the stretch is the price.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.pipeline import BackboneResult
from ..errors import InvalidParameterError, ValidationError
from ..net.paths import PathOracle
from ..types import NodeId

__all__ = [
    "HeadRouter",
    "RoutingReport",
    "route",
    "table_sizes",
    "routing_report",
]

#: Sentinel weight for "link absent" in the inheritance link-diff maps
#: (larger than any real virtual-link weight).
UNREACHABLE_W = float("inf")


class HeadRouter:
    """Cached cluster-routing primitives over one backbone.

    Three layers of reuse, all computed lazily and kept for the router's
    lifetime:

    * the **head adjacency** over selected virtual links, built once from
      ``result.selected_links`` (the per-call rebuild was the dominant
      cost of looped :func:`route` calls);
    * one **Dijkstra tree per source head** — distances and predecessors
      to *every* other head, so all flows leaving one cluster share a
      single shortest-path computation.  The relaxation discipline is
      identical to the original early-exit Dijkstra, so reconstructed
      head sequences match :func:`route`'s historical output exactly;
    * a **per-head-pair walk cache**: the head sequence expanded through
      the selected links' stored gateway paths, oriented source -> target.
    """

    def __init__(self, result: BackboneResult) -> None:
        self._result = result
        adj: dict[NodeId, list[tuple[int, NodeId]]] = {h: [] for h in result.heads}
        for a, b in result.selected_links:
            w = result.virtual_graph.link(a, b).weight
            adj[a].append((w, b))
            adj[b].append((w, a))
        self._adj = adj
        self._segments: dict[tuple[NodeId, NodeId], tuple[NodeId, ...]] = {}
        self._trees: dict[NodeId, tuple[dict, dict]] = {}
        self._head_seqs: dict[tuple[NodeId, NodeId], tuple[NodeId, ...]] = {}
        self._head_walks: dict[tuple[NodeId, NodeId], tuple[NodeId, ...]] = {}
        # Multipath layer: seeded tie-break Dijkstra trees, Yen lists and
        # expanded walks for non-canonical head sequences.  Never inherited
        # across repairs (conservative: they rebuild lazily on demand).
        self._alt_ranks: dict[int, dict[NodeId, int]] = {}
        self._alt_trees: dict[tuple[int, NodeId], tuple[dict, dict]] = {}
        self._kshort: dict[
            tuple[NodeId, NodeId, int], list[tuple[NodeId, ...]]
        ] = {}
        self._seq_walks: dict[tuple[NodeId, ...], tuple[NodeId, ...]] = {}

    @property
    def result(self) -> BackboneResult:
        """The backbone this router serves."""
        return self._result

    # -- incremental maintenance ---------------------------------------- #

    def rebind(self, result: BackboneResult) -> None:
        """Swap in a backbone with *identical* head-graph objects, in place.

        The O(1) counterpart of :meth:`inherit_from` for the one change
        that cannot touch the head-routing layer: a member arrival, where
        ``result`` differs from the current backbone only in its
        ``clustering``.  The virtual graph, selected links, adjacency,
        Dijkstra trees, head sequences, expanded walks and link segments
        all remain exact verbatim — no verification, no copying.

        Raises:
            InvalidParameterError: if ``result`` does not share this
                router's virtual-graph and selected-links objects (a
                changed CDS stage must rebuild and :meth:`inherit_from`).
        """
        if (
            result.virtual_graph is not self._result.virtual_graph
            or result.selected_links is not self._result.selected_links
        ):
            raise InvalidParameterError(
                "rebind requires the same head-graph objects; a changed "
                "CDS stage must rebuild the router and inherit_from"
            )
        self._result = result

    def inherit_from(
        self,
        old: "HeadRouter",
        removed: NodeId | None = None,
        changed_heads: frozenset[NodeId] = frozenset(),
    ) -> dict[str, int]:
        """Seed caches from ``old`` after the backbone was repaired/rebuilt.

        The same contract :meth:`LazyDistanceOracle.inherit_from`
        implements for rows/balls: every carried entry is *verified*
        still-valid against the new backbone, everything else rebuilds
        lazily on demand.  Validity is purely structural (the weighted
        head graphs and stored link paths are compared), so the method
        serves node removals and mobility edge deltas alike —
        ``removed`` only documents intent and may be omitted.

        * **link segments** carry over for links that are still selected
          with an identical stored gateway path;
        * a **Dijkstra tree** rooted at a surviving head ``h`` carries
          over iff no changed link could alter its distances *or its
          tie-breaking*.  The heapq Dijkstra settles nodes in
          deterministic ``(distance, id)`` order, so ``prev[v]`` is the
          achieving neighbor minimizing ``(dist, id)`` — a pure function
          of the metric and the candidate sets.  Hence a
          disappeared/lengthened link invalidates only when it *was* the
          chosen predecessor of its deeper endpoint; an
          appeared/shortened link invalidates when it strictly shortcuts
          (distances change), reaches a previously unreachable head
          (tree incomplete), or ties while beating the stored
          predecessor in ``(dist, id)`` order (prev would flip).  A
          carried tree is therefore *identical* to what a fresh run
          would build, so walks derived from it stay canonical;
        * **head sequences** are prev-chain reconstructions, so every
          sequence of a carried tree carries with it;
        * **expanded walks** additionally embed gateway paths, so each
          carries over only when every link along its head sequence kept
          its stored path.

        ``changed_heads`` (e.g. :attr:`RepairOutcome.scope_heads`) is an
        extra conservative mask: trees rooted at — and sequences/walks
        touching — a changed head are never inherited, even when the
        structural comparison finds no difference.

        Returns a counter dict (``trees`` / ``head_seqs`` / ``head_walks``
        / ``segments`` / ``head_graph_unchanged``) for maintenance
        reporting.
        """
        del removed  # validity is structural; the id only documents intent
        changed = {int(h) for h in changed_heads}
        stats = {
            "trees": 0,
            "head_seqs": 0,
            "head_walks": 0,
            "segments": 0,
            "head_graph_unchanged": 0,
        }
        new_vg = self._result.virtual_graph
        old_vg = old._result.virtual_graph
        new_links = self._result.selected_links
        old_links = old._result.selected_links
        if new_vg is old_vg and new_links is old_links:
            # The member-death splice reuses the virtual graph unchanged.
            same_path = set(new_links)
            new_w = old_w = {ab: new_vg.link(*ab).weight for ab in new_links}
        else:
            same_path = {
                ab
                for ab in new_links & old_links
                if new_vg.link(*ab).path == old_vg.link(*ab).path
            }
            new_w = {ab: new_vg.link(*ab).weight for ab in new_links}
            old_w = {ab: old_vg.link(*ab).weight for ab in old_links}
        for key, seg in old._segments.items():
            ab = key if key[0] < key[1] else (key[1], key[0])
            if ab in same_path and key not in self._segments:
                self._segments[key] = seg
                stats["segments"] += 1
        # Link events relative to the old trees' metric.
        gone = [
            (ab, old_w[ab])
            for ab in old_links
            if new_w.get(ab, UNREACHABLE_W) > old_w[ab]
        ]
        came = [
            (ab, new_w[ab])
            for ab in new_links
            if old_w.get(ab, UNREACHABLE_W) > new_w[ab]
        ]
        if not gone and not came:
            stats["head_graph_unchanged"] = 1
        inherited_trees = set()
        for h, tree in old._trees.items():
            if h in changed or h not in self._adj:
                continue
            dist, prev = tree
            ok = True
            for (a, b), w in gone:
                da, db = dist.get(a), dist.get(b)
                if da is None or db is None:
                    continue  # neither endpoint on any finite path pair
                if abs(da - db) != w:
                    continue  # slack: on no shortest path from h
                # The link achieved the deeper endpoint's distance; it
                # only matters if it was the *chosen* predecessor (the
                # settling-order argmin) — losing a non-chosen achieving
                # candidate changes neither dist nor prev.
                deeper, other = (a, b) if da > db else (b, a)
                if prev.get(deeper) == other:
                    ok = False
                    break
            if ok:
                for (a, b), w in came:
                    da, db = dist.get(a), dist.get(b)
                    if da is None and db is None:
                        continue  # still mutually unreachable from h
                    if da is None or db is None:
                        ok = False  # newly reachable head: tree incomplete
                        break
                    if da + w < db or db + w < da:
                        ok = False  # strict shortcut: distances change
                        break
                    # A tie adds an achieving candidate; it flips the
                    # deterministic prev (first-settled = smallest
                    # (dist, id)) only if it beats the stored one.
                    for x, y, dx, dy in ((a, b, da, db), (b, a, db, da)):
                        if dx + w == dy:
                            p = prev.get(y)
                            if p is None or (dx, x) < (dist[p], p):
                                ok = False
                                break
                    if not ok:
                        break
            if ok:
                self._trees[h] = tree
                inherited_trees.add(h)
                stats["trees"] += 1
        changed_links = (
            set(old_links) - same_path | {ab for ab, _ in came}
        )
        for key, seq in old._head_seqs.items():
            if key[0] not in inherited_trees:
                continue
            if changed and not changed.isdisjoint(seq):
                continue
            self._head_seqs[key] = seq
            stats["head_seqs"] += 1
        for key, walk in old._head_walks.items():
            if key[0] not in inherited_trees:
                continue
            seq = old._head_seqs.get(key)
            if seq is None:
                continue
            if changed and not changed.isdisjoint(seq):
                continue
            if changed_links and any(
                ((a, b) if a < b else (b, a)) in changed_links
                for a, b in zip(seq, seq[1:])
            ):
                continue
            self._head_walks[key] = walk
            stats["head_walks"] += 1
        return stats

    def tree(self, src_head: NodeId) -> tuple[dict, dict]:
        """The full Dijkstra ``(dist, prev)`` maps rooted at ``src_head``."""
        cached = self._trees.get(src_head)
        if cached is not None:
            return cached
        dist = {src_head: 0}
        prev: dict[NodeId, NodeId] = {}
        pq = [(0, src_head)]
        while pq:
            d, u = heapq.heappop(pq)
            if d > dist.get(u, float("inf")):
                continue
            for w, v in self._adj[u]:
                nd = d + w
                if nd < dist.get(v, float("inf")):
                    dist[v] = nd
                    prev[v] = u
                    heapq.heappush(pq, (nd, v))
        self._trees[src_head] = (dist, prev)
        return dist, prev

    def head_sequence(
        self, src_head: NodeId, dst_head: NodeId
    ) -> tuple[NodeId, ...]:
        """Shortest head sequence over selected virtual links (cached).

        Sequences are memoized per ordered pair along the Dijkstra tree's
        predecessor chains, so filling all pairs from one source costs
        O(total sequence length), not O(pairs · length).

        Raises:
            ValidationError: if the selected links do not connect the two
                heads (a broken backbone).
        """
        return self._seq(src_head, dst_head)

    def _seq(self, src_head: NodeId, dst_head: NodeId) -> tuple[NodeId, ...]:
        if src_head == dst_head:
            return (src_head,)
        key = (src_head, dst_head)
        cached = self._head_seqs.get(key)
        if cached is not None:
            return cached
        _, prev = self.tree(src_head)
        if dst_head not in prev:
            raise ValidationError(
                f"backbone does not connect heads {src_head} and {dst_head}"
            )
        # Walk back only as far as the first already-memoized prefix.
        suffix = [dst_head]
        cur = dst_head
        prefix: tuple[NodeId, ...] | None = None
        while True:
            cur = prev[cur]
            if cur == src_head:
                prefix = (src_head,)
                break
            prefix = self._head_seqs.get((src_head, cur))
            if prefix is not None:
                break
            suffix.append(cur)
        for i in range(len(suffix) - 1, -1, -1):
            prefix = prefix + (suffix[i],)
            self._head_seqs[(src_head, suffix[i])] = prefix
        return prefix

    def head_walk(self, src_head: NodeId, dst_head: NodeId) -> tuple[NodeId, ...]:
        """The expanded backbone walk ``src_head .. dst_head`` (cached).

        Adjacent heads of the sequence are joined by the selected link's
        stored gateway path, oriented in walk direction; walks are built
        incrementally from the memoized walk to the predecessor head, so
        filling all pairs from one source is O(total walk length).
        """
        if src_head == dst_head:
            return (src_head,)
        cached = self._head_walks.get((src_head, dst_head))
        if cached is not None:
            return cached
        seq = self._seq(src_head, dst_head)
        walks = self._head_walks
        walk = self._segment(seq[0], seq[1])
        walks.setdefault((src_head, seq[1]), walk)
        for i in range(2, len(seq)):
            key = (src_head, seq[i])
            nxt = walks.get(key)
            if nxt is None:
                nxt = walk + self._segment(seq[i - 1], seq[i])[1:]
                walks[key] = nxt
            walk = nxt
        return walk

    def _segment(self, a: NodeId, b: NodeId) -> tuple[NodeId, ...]:
        """The selected ``a``-``b`` link's gateway path, oriented a -> b."""
        seg = self._segments.get((a, b))
        if seg is None:
            path = self._result.virtual_graph.link(
                *((a, b) if a < b else (b, a))
            ).path
            seg = path if path[0] == a else tuple(reversed(path))
            self._segments[(a, b)] = seg
        return seg

    # -- multipath: equal-cost variants and k-shortest head walks ------- #

    def link_weight(self, a: NodeId, b: NodeId) -> int:
        """Weight (physical hop count) of the selected virtual link a-b."""
        return self._result.virtual_graph.link(
            *((a, b) if a < b else (b, a))
        ).weight

    def seq_weight(self, seq: tuple[NodeId, ...]) -> int:
        """Total physical hop count of a head sequence over selected links."""
        return sum(self.link_weight(a, b) for a, b in zip(seq, seq[1:]))

    def _rank(self, variant: int) -> dict[NodeId, int]:
        """A seeded permutation rank over heads (the tie-break order)."""
        ranks = self._alt_ranks.get(variant)
        if ranks is None:
            heads = sorted(self._adj)
            perm = np.random.default_rng(variant).permutation(len(heads))
            ranks = {h: int(r) for h, r in zip(heads, perm.tolist())}
            self._alt_ranks[variant] = ranks
        return ranks

    def alt_tree(
        self, src_head: NodeId, variant: int
    ) -> tuple[dict, dict]:
        """A Dijkstra tree with *seeded* tie-breaking (cached per variant).

        Identical distances to :meth:`tree`, but nodes at equal distance
        settle in a seeded-permutation order instead of ascending ID, so
        among equal-cost predecessors a different one wins ``prev`` —
        every variant yields shortest head sequences of the *same* weight
        along *different* equal-cost routes.  One tree per
        ``(variant, src_head)`` serves every destination, so the cost
        amortizes across all flows leaving one cluster.
        """
        key = (variant, src_head)
        cached = self._alt_trees.get(key)
        if cached is not None:
            return cached
        rank = self._rank(variant)
        dist = {src_head: 0}
        prev: dict[NodeId, NodeId] = {}
        pq = [(0, rank[src_head], src_head)]
        while pq:
            d, _, u = heapq.heappop(pq)
            if d > dist.get(u, float("inf")):
                continue
            for w, v in self._adj[u]:
                nd = d + w
                if nd < dist.get(v, float("inf")):
                    dist[v] = nd
                    prev[v] = u
                    heapq.heappush(pq, (nd, rank[v], v))
        self._alt_trees[key] = (dist, prev)
        return dist, prev

    def alt_sequence(
        self, src_head: NodeId, dst_head: NodeId, variant: int
    ) -> tuple[NodeId, ...]:
        """A shortest head sequence under variant ``variant`` tie-breaking.

        Same weight as :meth:`head_sequence`'s canonical answer, possibly
        a different equal-cost route.

        Raises:
            ValidationError: if the selected links do not connect the pair.
        """
        if src_head == dst_head:
            return (src_head,)
        dist, prev = self.alt_tree(src_head, variant)
        if dst_head not in prev:
            raise ValidationError(
                f"backbone does not connect heads {src_head} and {dst_head}"
            )
        del dist
        seq = [dst_head]
        while seq[-1] != src_head:
            seq.append(prev[seq[-1]])
        return tuple(reversed(seq))

    def _spur(
        self,
        src: NodeId,
        dst: NodeId,
        banned_nodes: set[NodeId],
        banned_edges: set[tuple[NodeId, NodeId]],
        limit: float = float("inf"),
    ) -> Optional[tuple[NodeId, ...]]:
        """Shortest ``src -> dst`` head path avoiding bans (Yen's spur step).

        Deterministic ``(dist, id)`` settle order, early exit at ``dst``,
        and distance-bounded (``limit``) — a weight-capped k-shortest
        query never explores heads its detours could not afford.  None
        when the (restricted, bounded) search does not reach ``dst``.
        """
        dist = {src: 0}
        prev: dict[NodeId, NodeId] = {}
        pq = [(0, src)]
        while pq:
            d, u = heapq.heappop(pq)
            if d > dist.get(u, float("inf")):
                continue
            if u == dst:
                break
            for w, v in self._adj[u]:
                if v in banned_nodes:
                    continue
                if ((u, v) if u < v else (v, u)) in banned_edges:
                    continue
                nd = d + w
                if nd > limit:
                    continue
                if nd < dist.get(v, float("inf")):
                    dist[v] = nd
                    prev[v] = u
                    heapq.heappush(pq, (nd, v))
        if dst not in dist:
            return None
        seq = [dst]
        while seq[-1] != src:
            seq.append(prev[seq[-1]])
        return tuple(reversed(seq))

    def k_shortest_sequences(
        self,
        src_head: NodeId,
        dst_head: NodeId,
        k: int,
        max_weight: float = float("inf"),
    ) -> list[tuple[NodeId, ...]]:
        """Up to ``k`` loopless shortest head sequences, Yen-style (cached).

        The first entry is always the canonical :meth:`head_sequence`;
        later entries ascend in ``(weight, sequence)`` order, so the list
        is fully deterministic.  Spur paths reuse the head adjacency with
        per-deviation node/edge bans; every returned sequence is loopless
        (the root prefix is loopless and the spur avoids its nodes).
        ``max_weight`` caps the total sequence weight — the spur searches
        prune at the residual budget, so a tight cap (e.g. a stretch
        bound) makes the whole query local to the pair's neighborhood.

        Raises:
            InvalidParameterError: if ``k < 1``.
            ValidationError: if the selected links do not connect the pair.
        """
        if k < 1:
            raise InvalidParameterError("k_shortest_sequences needs k >= 1")
        key = (src_head, dst_head, k, max_weight)
        cached = self._kshort.get(key)
        if cached is not None:
            return list(cached)
        if src_head == dst_head:
            found = [(src_head,)]
            self._kshort[key] = found
            return list(found)
        first = self._seq(src_head, dst_head)
        found = [first]
        seen = {first}
        candidates: list[tuple[int, tuple[NodeId, ...]]] = []
        while len(found) < k:
            base = found[-1]
            for j in range(len(base) - 1):
                root = base[: j + 1]
                budget = max_weight - self.seq_weight(root)
                if budget < 0:
                    break
                banned_edges = {
                    ((p[j], p[j + 1]) if p[j] < p[j + 1] else (p[j + 1], p[j]))
                    for p in found
                    if len(p) > j + 1 and p[: j + 1] == root
                }
                alt = self._spur(
                    root[-1],
                    dst_head,
                    set(root[:-1]),
                    banned_edges,
                    limit=budget,
                )
                if alt is None:
                    continue
                seq = root + alt[1:]
                if seq in seen:
                    continue
                seen.add(seq)
                heapq.heappush(candidates, (self.seq_weight(seq), seq))
            if not candidates:
                break
            _, best = heapq.heappop(candidates)
            found.append(best)
        self._kshort[key] = found
        return list(found)

    def walk_for_seq(self, seq: tuple[NodeId, ...]) -> tuple[NodeId, ...]:
        """The expanded backbone walk along an explicit head sequence.

        The multipath counterpart of :meth:`head_walk`: adjacent heads
        join through the selected links' stored gateway paths, oriented
        in walk direction; results are memoized per sequence so balanced
        batches expand each candidate once.

        Raises:
            InvalidParameterError: if consecutive heads are not joined by
                a selected link (via the virtual graph's link lookup).
        """
        if len(seq) < 2:
            return seq
        cached = self._seq_walks.get(seq)
        if cached is None:
            walk = list(self._segment(seq[0], seq[1]))
            for i in range(2, len(seq)):
                walk.extend(self._segment(seq[i - 1], seq[i])[1:])
            cached = tuple(walk)
            self._seq_walks[seq] = cached
        return cached

    def walk(
        self, oracle: PathOracle, source: NodeId, target: NodeId
    ) -> tuple[NodeId, ...]:
        """The full cluster-routing walk from ``source`` to ``target``.

        Same cluster: direct canonical path (members know their own
        cluster).  Different clusters: source -> head -> backbone -> head
        -> target.  The returned walk may revisit nodes (e.g. the source's
        head path overlapping the backbone); its *length* is what stretch
        measures.
        """
        cl = self._result.clustering
        if not (0 <= source < cl.graph.n and 0 <= target < cl.graph.n):
            raise InvalidParameterError("route endpoints out of range")
        if source == target:
            return (source,)
        hs, ht = cl.cluster_of(source), cl.cluster_of(target)
        if hs == ht:
            return oracle.path(source, target)
        walk: list[NodeId] = list(oracle.path(source, hs))
        walk.extend(self.head_walk(hs, ht)[1:])
        walk.extend(oracle.path(ht, target)[1:])
        return tuple(walk)


def route(
    result: BackboneResult,
    oracle: PathOracle,
    source: NodeId,
    target: NodeId,
) -> tuple[NodeId, ...]:
    """The cluster-routing walk from ``source`` to ``target``.

    Scalar convenience form: same-cluster pairs never touch the head
    graph; inter-cluster pairs build a transient :class:`HeadRouter` per
    call, so a loop over many pairs re-pays the head-graph setup every
    time — exactly the baseline the batch router
    (:class:`repro.traffic.router.BatchRouter`) amortizes.
    """
    cl = result.clustering
    if not (0 <= source < cl.graph.n and 0 <= target < cl.graph.n):
        raise InvalidParameterError("route endpoints out of range")
    if source == target:
        return (source,)
    if cl.cluster_of(source) == cl.cluster_of(target):
        return oracle.path(source, target)
    return HeadRouter(result).walk(oracle, source, target)


def table_sizes(result: BackboneResult) -> dict[NodeId, int]:
    """Per-node routing-table entry counts under cluster routing.

    Members store their cluster co-members; heads additionally store one
    backbone entry per other clusterhead.
    """
    cl = result.clustering
    out: dict[NodeId, int] = {}
    n_heads = len(result.heads)
    for h in cl.heads:
        size = len(cl.members(h))
        for u in cl.members(h):
            out[u] = size - 1  # routes to co-members
        out[h] = (size - 1) + (n_heads - 1)  # plus the backbone table
    return out


@dataclass(frozen=True)
class RoutingReport:
    """Sampled routing metrics for one backbone.

    Attributes:
        pairs: number of sampled (source, target) pairs.
        mean_stretch / max_stretch: walk length over shortest-path length.
        mean_table / max_table: cluster-routing table sizes.
        flat_table: the link-state baseline table size (n - 1).
    """

    pairs: int
    mean_stretch: float
    max_stretch: float
    mean_table: float
    max_table: int
    flat_table: int


def routing_report(
    result: BackboneResult,
    oracle: PathOracle,
    *,
    samples: int = 50,
    seed: int = 0,
    router: Optional[HeadRouter] = None,
) -> RoutingReport:
    """Sample random pairs and measure stretch + table sizes.

    Every sampled walk is validated edge-by-edge against the real graph
    before being counted.  One :class:`HeadRouter` is shared across the
    samples (pass ``router`` to share it further).
    """
    g = result.clustering.graph
    if g.n < 2:
        raise InvalidParameterError("routing needs at least two nodes")
    rng = np.random.default_rng(seed)
    pairs = [
        tuple(int(x) for x in rng.choice(g.n, size=2, replace=False))
        for _ in range(samples)
    ]
    hr = router or HeadRouter(result)
    walks = []
    for s, t in pairs:
        walk = hr.walk(oracle, s, t)
        for a, b in zip(walk, walk[1:]):
            if not g.has_edge(a, b):
                raise ValidationError(f"routing walk uses non-edge ({a},{b})")
        walks.append(walk)
    # One bulk pair-distance query: grouped batched rows on the lazy
    # backend, O(|label|) label joins per pair on the landmark backend.
    shortest = g.oracle.pair_distances(pairs)
    stretches = [
        (len(walk) - 1) / int(d) for walk, d in zip(walks, shortest)
    ]
    tables = table_sizes(result)
    sizes = list(tables.values())
    return RoutingReport(
        pairs=samples,
        mean_stretch=float(np.mean(stretches)),
        max_stretch=float(np.max(stretches)),
        mean_table=float(np.mean(sizes)),
        max_table=int(np.max(sizes)),
        flat_table=g.n - 1,
    )
