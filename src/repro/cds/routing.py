"""Cluster-based routing over the k-hop backbone (§1/§2 motivation).

The paper motivates clustering with routing: "helping to achieve smaller
routing tables and fewer route updates" ((α,t)-cluster, the B-protocol,
MMWN).  This module quantifies that on any produced backbone:

* **flat link-state baseline** — every node stores a route to every other
  node: table size n-1, stretch 1 by definition;
* **cluster-based routing** — a node stores routes only to its own
  cluster's members plus its head; heads additionally store the backbone
  table (one entry per clusterhead).  A packet travels source -> its head
  (canonical path), head -> destination head over selected virtual links
  (shortest path in the cluster graph G'), destination head -> destination.

:func:`route` returns the actual walk; :func:`routing_report` samples
source/destination pairs and reports mean/max stretch and table sizes —
the table-size collapse is the win, the stretch is the price.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
import numpy as np

from ..core.pipeline import BackboneResult
from ..errors import InvalidParameterError, ValidationError
from ..net.paths import PathOracle
from ..types import NodeId

__all__ = ["RoutingReport", "route", "table_sizes", "routing_report"]


def _backbone_shortest(
    result: BackboneResult, src_head: NodeId, dst_head: NodeId
) -> list[NodeId]:
    """Shortest head sequence over selected virtual links (Dijkstra)."""
    if src_head == dst_head:
        return [src_head]
    adj: dict[NodeId, list[tuple[int, NodeId]]] = {h: [] for h in result.heads}
    for a, b in result.selected_links:
        w = result.virtual_graph.link(a, b).weight
        adj[a].append((w, b))
        adj[b].append((w, a))
    dist = {src_head: 0}
    prev: dict[NodeId, NodeId] = {}
    pq = [(0, src_head)]
    while pq:
        d, u = heapq.heappop(pq)
        if u == dst_head:
            break
        if d > dist.get(u, float("inf")):
            continue
        for w, v in adj[u]:
            nd = d + w
            if nd < dist.get(v, float("inf")):
                dist[v] = nd
                prev[v] = u
                heapq.heappush(pq, (nd, v))
    if dst_head not in prev and dst_head != src_head:
        raise ValidationError(
            f"backbone does not connect heads {src_head} and {dst_head}"
        )
    seq = [dst_head]
    while seq[-1] != src_head:
        seq.append(prev[seq[-1]])
    return list(reversed(seq))


def route(
    result: BackboneResult,
    oracle: PathOracle,
    source: NodeId,
    target: NodeId,
) -> tuple[NodeId, ...]:
    """The cluster-routing walk from ``source`` to ``target``.

    Same cluster: direct canonical path (members know their own cluster).
    Different clusters: source -> head -> backbone -> head -> target.
    The returned walk may revisit nodes (e.g. the source's head path
    overlapping the backbone); its *length* is what stretch measures.
    """
    cl = result.clustering
    if not (0 <= source < cl.graph.n and 0 <= target < cl.graph.n):
        raise InvalidParameterError("route endpoints out of range")
    if source == target:
        return (source,)
    hs, ht = cl.cluster_of(source), cl.cluster_of(target)
    if hs == ht:
        return oracle.path(source, target)
    walk: list[NodeId] = list(oracle.path(source, hs))
    head_seq = _backbone_shortest(result, hs, ht)
    for a, b in zip(head_seq, head_seq[1:]):
        seg = result.virtual_graph.link(*(sorted((a, b)))).path
        if seg[0] != a:
            seg = tuple(reversed(seg))
        walk.extend(seg[1:])
    walk.extend(oracle.path(ht, target)[1:])
    return tuple(walk)


def table_sizes(result: BackboneResult) -> dict[NodeId, int]:
    """Per-node routing-table entry counts under cluster routing.

    Members store their cluster co-members; heads additionally store one
    backbone entry per other clusterhead.
    """
    cl = result.clustering
    out: dict[NodeId, int] = {}
    n_heads = len(result.heads)
    for h in cl.heads:
        size = len(cl.members(h))
        for u in cl.members(h):
            out[u] = size - 1  # routes to co-members
        out[h] = (size - 1) + (n_heads - 1)  # plus the backbone table
    return out


@dataclass(frozen=True)
class RoutingReport:
    """Sampled routing metrics for one backbone.

    Attributes:
        pairs: number of sampled (source, target) pairs.
        mean_stretch / max_stretch: walk length over shortest-path length.
        mean_table / max_table: cluster-routing table sizes.
        flat_table: the link-state baseline table size (n - 1).
    """

    pairs: int
    mean_stretch: float
    max_stretch: float
    mean_table: float
    max_table: int
    flat_table: int


def routing_report(
    result: BackboneResult,
    oracle: PathOracle,
    *,
    samples: int = 50,
    seed: int = 0,
) -> RoutingReport:
    """Sample random pairs and measure stretch + table sizes.

    Every sampled walk is validated edge-by-edge against the real graph
    before being counted.
    """
    g = result.clustering.graph
    if g.n < 2:
        raise InvalidParameterError("routing needs at least two nodes")
    rng = np.random.default_rng(seed)
    pairs = [
        tuple(int(x) for x in rng.choice(g.n, size=2, replace=False))
        for _ in range(samples)
    ]
    walks = []
    for s, t in pairs:
        walk = route(result, oracle, s, t)
        for a, b in zip(walk, walk[1:]):
            if not g.has_edge(a, b):
                raise ValidationError(f"routing walk uses non-edge ({a},{b})")
        walks.append(walk)
    # One bulk pair-distance query: grouped batched rows on the lazy
    # backend, O(|label|) label joins per pair on the landmark backend.
    shortest = g.oracle.pair_distances(pairs)
    stretches = [
        (len(walk) - 1) / int(d) for walk, d in zip(walks, shortest)
    ]
    tables = table_sizes(result)
    sizes = list(tables.values())
    return RoutingReport(
        pairs=samples,
        mean_stretch=float(np.mean(stretches)),
        max_stretch=float(np.max(stretches)),
        mean_table=float(np.mean(sizes)),
        max_table=int(np.max(sizes)),
        flat_table=g.n - 1,
    )
