"""Broadcast application: blind flooding vs. backbone-assisted broadcast.

The paper motivates clustering by broadcast cost (§1): "If all the hosts
are organized into clusters, the information transmission flooding could be
confined within each cluster", and the backbone (clusterheads + gateways)
carries inter-cluster traffic.  This module quantifies that claim on any
produced k-hop CDS:

* :func:`blind_flood` — every node retransmits once (the baseline: N
  transmissions, guaranteed delivery on a connected graph);
* :func:`backbone_broadcast` — the source forwards to its clusterhead along
  the canonical path, the backbone floods (every CDS node retransmits once),
  and every clusterhead disseminates to its members:

  - ``mode="tree"`` — down a shortest-path tree (transmitters = interior
    nodes of canonical head-to-member paths, plus the head);
  - ``mode="flood"`` — a TTL-k scoped flood (every node within k-1 hops of
    the head retransmits), the pessimistic MANET realization.

Delivery is *checked*, not assumed: a node is delivered iff it transmits or
hears a transmitter, and the returned stats record whether every node was
reached.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import InvalidParameterError
from ..net.graph import Graph
from ..net.paths import PathOracle
from ..types import NodeId
from .builder import KhopCDS

__all__ = ["BroadcastStats", "blind_flood", "backbone_broadcast"]


@dataclass(frozen=True)
class BroadcastStats:
    """Outcome of one simulated broadcast.

    Attributes:
        source: originating node.
        transmissions: total packet transmissions (the cost metric).
        delivered: number of nodes that received the message.
        delivered_all: whether the whole network was covered.
        uplink_tx / backbone_tx / intra_tx: cost breakdown (0 for flooding).
    """

    source: NodeId
    transmissions: int
    delivered: int
    delivered_all: bool
    uplink_tx: int = 0
    backbone_tx: int = 0
    intra_tx: int = 0


def _coverage(graph: Graph, transmitters: set[NodeId]) -> set[NodeId]:
    """Nodes that received the message: transmitters plus their neighbors."""
    covered = set(transmitters)
    for t in transmitters:
        covered.update(graph.neighbors(t))
    return covered


def blind_flood(graph: Graph, source: NodeId) -> BroadcastStats:
    """Classic flooding: every node that receives the message forwards once.

    On a connected graph every node transmits, so the cost is exactly ``n``
    transmissions.
    """
    # BFS to find who actually receives (handles disconnected inputs).
    reached = {source}
    frontier = [source]
    while frontier:
        nxt = []
        for u in frontier:
            for v in graph.neighbors(u):
                if v not in reached:
                    reached.add(v)
                    nxt.append(v)
        frontier = nxt
    return BroadcastStats(
        source=source,
        transmissions=len(reached),
        delivered=len(reached),
        delivered_all=len(reached) == graph.n,
    )


def backbone_broadcast(
    cds: KhopCDS,
    oracle: PathOracle,
    source: NodeId,
    mode: str = "tree",
) -> BroadcastStats:
    """Broadcast from ``source`` using the clustering backbone.

    Args:
        cds: a verified k-hop CDS.
        oracle: path oracle over the same graph.
        source: originating node.
        mode: intra-cluster dissemination model, ``"tree"`` or ``"flood"``.

    Returns:
        :class:`BroadcastStats` with the cost breakdown.
    """
    if mode not in ("tree", "flood"):
        raise InvalidParameterError(f"unknown broadcast mode {mode!r}")
    clustering = cds.clustering
    graph = clustering.graph
    k = clustering.k

    # 1. Uplink: source relays to its head along the canonical path.  Every
    #    path node except the head transmits (the head's transmission counts
    #    in the backbone phase).
    head = clustering.cluster_of(source)
    up_path = oracle.path(source, head)
    uplink_transmitters = set(up_path[:-1])

    # 2. Backbone flood: every CDS node retransmits once.
    backbone_transmitters = set(cds.nodes)

    # 3. Intra-cluster dissemination from each head to its members.
    intra_transmitters: set[NodeId] = set()
    if mode == "tree":
        for h in clustering.heads:
            for member in clustering.members(h):
                if member == h:
                    continue
                intra_transmitters.update(oracle.interior(h, member))
    else:  # scoped TTL-k flood around each head
        distances = graph.oracle
        for h in clustering.heads:
            ball_nodes, ball_dists = distances.ball(h, k - 1)
            intra_transmitters.update(ball_nodes[ball_dists > 0].tolist())

    intra_transmitters -= backbone_transmitters
    uplink_only = uplink_transmitters - backbone_transmitters - intra_transmitters
    transmitters = uplink_only | backbone_transmitters | intra_transmitters
    covered = _coverage(graph, transmitters)
    return BroadcastStats(
        source=source,
        transmissions=len(transmitters),
        delivered=len(covered),
        delivered_all=len(covered) == graph.n,
        uplink_tx=len(uplink_only),
        backbone_tx=len(backbone_transmitters),
        intra_tx=len(intra_transmitters),
    )
