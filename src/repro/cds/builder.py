"""k-hop CDS assembly and intra-cluster routing structure.

In 1-hop clustering the heads + gateways form a classic connected
dominating set; for general k they form a **k-hop CDS**: the set is
connected in ``G`` and every node is within k hops of a head.  This module
materializes that object from a :class:`~repro.core.pipeline.BackboneResult`
and adds the intra-cluster BFS trees that the broadcast application uses to
move traffic between members and their head.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..core.clustering import Clustering
from ..core.pipeline import BackboneResult
from ..errors import InvalidParameterError
from ..types import NodeId

__all__ = ["KhopCDS", "build_cds", "intra_cluster_parents"]


@dataclass(frozen=True)
class KhopCDS:
    """A materialized k-hop connected dominating set.

    Attributes:
        clustering: the underlying clustering.
        heads: clusterhead IDs.
        gateways: gateway node IDs (disjoint from heads).
        algorithm: provenance — which pipeline produced it.
    """

    clustering: Clustering
    heads: frozenset[NodeId]
    gateways: frozenset[NodeId]
    algorithm: str

    @property
    def nodes(self) -> frozenset[NodeId]:
        """All CDS members: heads plus gateways."""
        return self.heads | self.gateways

    @property
    def size(self) -> int:
        """CDS size (the paper's y-axis in Figures 5-7)."""
        return len(self.heads) + len(self.gateways)

    def role(self, u: NodeId) -> str:
        """``"head"``, ``"gateway"`` or ``"member"`` for node ``u``."""
        if u in self.heads:
            return "head"
        if u in self.gateways:
            return "gateway"
        return "member"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"KhopCDS({self.algorithm}, heads={len(self.heads)}, "
            f"gateways={len(self.gateways)})"
        )


def build_cds(result: BackboneResult) -> KhopCDS:
    """Materialize the CDS of a pipeline result.

    Raises:
        InvalidParameterError: if the result's gateways intersect its heads
            (would indicate a pipeline bug; gateways are non-heads by
            construction).
    """
    heads = frozenset(result.heads)
    if heads & result.gateways:
        raise InvalidParameterError(
            f"gateway set intersects heads: {sorted(heads & result.gateways)}"
        )
    return KhopCDS(
        clustering=result.clustering,
        heads=heads,
        gateways=result.gateways,
        algorithm=result.algorithm,
    )


def intra_cluster_parents(clustering: Clustering) -> Mapping[NodeId, NodeId]:
    """BFS parent pointers from every member toward its clusterhead.

    For each cluster, parents follow the canonical min-ID-predecessor
    convention **restricted to the member set**, so intra-cluster traffic
    never leaves the cluster.  Heads map to themselves.  Every cluster is
    connected as a node set (members reached the head through k-hop paths in
    G, but the paper's clusters are defined by distance, not induced
    connectivity) — when a member has no in-cluster neighbor closer to the
    head, its parent falls back to the canonical G-path predecessor, which
    may cross clusters; the broadcast layer accounts for such relays.
    """
    g = clustering.graph
    parents: dict[NodeId, NodeId] = {}
    for head in clustering.heads:
        dist = g.bfs_distances(head)
        members = set(clustering.members(head))
        for u in sorted(members):
            if u == head:
                parents[u] = head
                continue
            closer = [
                w
                for w in g.neighbors(u)
                if dist[w] == dist[u] - 1 and w in members
            ]
            if closer:
                parents[u] = min(closer)
            else:
                parents[u] = min(
                    w for w in g.neighbors(u) if dist[w] == dist[u] - 1
                )
    return parents
