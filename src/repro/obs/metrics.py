"""Process-local metrics registry: counters, gauges, log-bucket histograms.

One registry per process (:func:`registry`), fed by the engine's existing
stats sources — :class:`~repro.net.oracle.OracleStats` snapshots, the
router's inheritance counter dicts, :func:`~repro.maintenance.repair.repair`
action outcomes, :func:`~repro.faults.delivery.deliver`'s tx/rx ledgers.
Every source keeps its dataclass API; the registry is a *second* sink the
instrumented call sites publish into, never a replacement.

The whole layer is gated on one switch (:func:`enabled` /
:func:`set_enabled`, initialized from the ``REPRO_TRACE`` environment
variable).  While disabled, the module-level helpers (:func:`counter`,
:func:`gauge`, :func:`histogram`) hand back shared no-op instruments and
the registry stays empty — the disabled fast path is one flag test plus
one attribute call per publish site, cheap enough to leave compiled into
the hot engine paths.

Zero third-party dependencies by design: the observability substrate must
import (and fail) independently of numpy/scipy, so it can wrap anything.
"""

from __future__ import annotations

import os
import threading
from typing import Iterable, Mapping, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "counter",
    "gauge",
    "histogram",
    "enabled",
    "set_enabled",
    "registry",
    "reset",
    "publish_counters",
    "publish_oracle_stats",
]

#: Fixed log-spaced histogram bucket upper bounds (powers of 4 from 1 to
#: ~10^9) — wide enough for packet counts, byte sizes and microsecond
#: durations alike, small enough to render as one ASCII row each.
DEFAULT_BUCKETS: tuple[float, ...] = tuple(4.0**i for i in range(16))


class Counter:
    """A monotonically increasing integer counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, n: int = 1) -> None:
        """Increase the counter by ``n`` (must be >= 0)."""
        if n < 0:
            raise ValueError(f"counter {self.name}: negative add {n}")
        self.value += n


class Gauge:
    """A point-in-time value; :meth:`set` overwrites, no history."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current value of the tracked quantity."""
        self.value = float(value)


class Histogram:
    """Fixed log-spaced-bucket histogram with sum and count.

    Buckets are cumulative-style upper bounds (``value <= bound`` lands in
    that bucket's bin; anything beyond the last bound lands in the
    implicit overflow bin).  The bounds are fixed at construction so two
    snapshots of the same histogram are always mergeable/diffable.
    """

    __slots__ = ("name", "bounds", "counts", "total", "count")

    def __init__(
        self, name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> None:
        if list(bounds) != sorted(bounds) or len(bounds) < 1:
            raise ValueError(f"histogram {name}: bounds must ascend")
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(bounds) + 1)  # +1 = overflow bin
        self.total = 0.0
        self.count = 0

    def _bin(self, value: float) -> int:
        lo, hi = 0, len(self.bounds)
        while lo < hi:  # first bound >= value (bisect, no imports)
            mid = (lo + hi) // 2
            if self.bounds[mid] < value:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def observe(self, value: float) -> None:
        """Record one sample."""
        value = float(value)
        self.counts[self._bin(value)] += 1
        self.total += value
        self.count += 1

    def observe_many(self, values: Iterable[float]) -> None:
        """Record a batch of samples."""
        for v in values:
            self.observe(v)

    @property
    def mean(self) -> float:
        """Mean of all observed samples (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0


class _NoopInstrument:
    """Shared do-nothing counter/gauge/histogram for the disabled path."""

    __slots__ = ()
    name = "<disabled>"
    value = 0

    def add(self, n: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def observe_many(self, values: Iterable[float]) -> None:
        pass


_NOOP = _NoopInstrument()


class MetricsRegistry:
    """Name -> instrument maps plus snapshot/diff helpers."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (created on first use)."""
        c = self.counters.get(name)
        if c is None:
            with self._lock:
                c = self.counters.setdefault(name, Counter(name))
        return c

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under ``name`` (created on first use)."""
        g = self.gauges.get(name)
        if g is None:
            with self._lock:
                g = self.gauges.setdefault(name, Gauge(name))
        return g

    def histogram(
        self, name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> Histogram:
        """The histogram under ``name`` (bounds apply on first use only)."""
        h = self.histograms.get(name)
        if h is None:
            with self._lock:
                h = self.histograms.setdefault(name, Histogram(name, bounds))
        return h

    def __len__(self) -> int:
        """Total registered instruments (0 = nothing ever published)."""
        return len(self.counters) + len(self.gauges) + len(self.histograms)

    def counter_values(self) -> dict[str, int]:
        """Current counter values (the span layer diffs two of these)."""
        return {name: c.value for name, c in self.counters.items()}

    def snapshot(self) -> dict[str, dict[str, object]]:
        """JSON-ready dump of every instrument, sorted by name."""
        return {
            "counters": {
                name: self.counters[name].value
                for name in sorted(self.counters)
            },
            "gauges": {
                name: self.gauges[name].value for name in sorted(self.gauges)
            },
            "histograms": {
                name: {
                    "bounds": list(h.bounds),
                    "counts": list(h.counts),
                    "sum": h.total,
                    "count": h.count,
                }
                for name, h in sorted(self.histograms.items())
            },
        }

    def clear(self) -> None:
        """Drop every registered instrument."""
        with self._lock:
            self.counters.clear()
            self.gauges.clear()
            self.histograms.clear()


_REGISTRY = MetricsRegistry()

#: The single observability switch.  ``REPRO_TRACE=1`` (any value except
#: ``0``/``""``) enables metrics + tracing at import; the CLI's
#: ``--trace`` flag flips it per run.
_ENABLED: bool = os.environ.get("REPRO_TRACE", "0") not in ("", "0")


def enabled() -> bool:
    """Whether the observability layer is collecting."""
    return _ENABLED


def set_enabled(on: bool) -> None:
    """Flip the observability switch (metrics *and* spans)."""
    global _ENABLED
    _ENABLED = bool(on)


def registry() -> MetricsRegistry:
    """The process-local registry (empty while disabled)."""
    return _REGISTRY


def reset() -> None:
    """Clear every registered instrument (tests and fresh CLI runs)."""
    _REGISTRY.clear()


def counter(name: str) -> Union[Counter, _NoopInstrument]:
    """Registry counter while enabled, shared no-op instrument otherwise."""
    return _REGISTRY.counter(name) if _ENABLED else _NOOP


def gauge(name: str) -> Union[Gauge, _NoopInstrument]:
    """Registry gauge while enabled, shared no-op instrument otherwise."""
    return _REGISTRY.gauge(name) if _ENABLED else _NOOP


def histogram(
    name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS
) -> Union[Histogram, _NoopInstrument]:
    """Registry histogram while enabled, no-op instrument otherwise."""
    return _REGISTRY.histogram(name, bounds) if _ENABLED else _NOOP


def publish_counters(prefix: str, values: Mapping[str, int]) -> None:
    """Add a dict of per-operation counter deltas under ``prefix.*``.

    The natural sink for the router/oracle inheritance stats dicts, whose
    values are already per-event deltas.  No-op while disabled.
    """
    if not _ENABLED:
        return
    for key, val in values.items():
        _REGISTRY.counter(f"{prefix}.{key}").add(int(val))


def publish_oracle_stats(stats: object, prefix: str = "oracle") -> None:
    """Publish one :class:`~repro.net.oracle.OracleStats`-shaped snapshot.

    Cumulative per-oracle totals land as **gauges** (``set`` is idempotent,
    so re-publishing a later snapshot of the same oracle never
    double-counts), keyed by backend: ``oracle.lazy.row_hits`` etc.  Typed
    as ``object`` to keep this module numpy/dataclass-agnostic — any
    object with the stats field names works.
    """
    if not _ENABLED:
        return
    backend = getattr(stats, "backend", "unknown")
    for field in (
        "rows_computed",
        "row_hits",
        "balls_computed",
        "ball_hits",
        "cached_bytes",
        "peak_cached_bytes",
        "rows_inherited",
        "balls_inherited",
        "rows_partial_inherited",
        "rows_patched",
        "rows_reexpanded",
        "batched_sweeps",
        "pair_queries",
        "label_entries",
        "paths_computed",
        "path_hits",
        "lineage_rows_computed",
        "lineage_row_hits",
        "lineage_inherits",
    ):
        value = getattr(stats, field, None)
        if value:
            _REGISTRY.gauge(f"{prefix}.{backend}.{field}").set(float(value))
