"""Span-based tracing: nested wall-time + counter-delta attribution.

A span is one named stage of the pipeline (``cluster``, ``cds``,
``labels``, ``router``, ``epochs``, ``epoch``, ``repair``, ...).  Spans
nest: entering a span while another is open attaches it as a child, so
one ``repro-khop traffic --trace`` run yields a tree whose root covers
the whole experiment and whose leaves are the individual stages.  Each
span records

* wall time (``duration``), and the *self* time left after subtracting
  its children — summed self-times over a tree telescope exactly to the
  root's duration, which is what makes the flame summary additive;
* the registry counter deltas attributed to it: counters incremented
  between enter and exit that no *child* span already claimed.

While the observability switch is off (:func:`repro.obs.metrics.enabled`)
:func:`span` returns one shared no-op context manager — no allocation, no
clock read — so instrumented engine code pays a flag test per stage and
nothing else.  This module is the **only** place in ``src/repro`` allowed
to touch ``time.perf_counter`` (lint rule R010 ``timing-discipline``).
"""

from __future__ import annotations

import time
from typing import Any, Optional

from .metrics import enabled, registry

__all__ = [
    "Span",
    "span",
    "take_finished",
    "active_span",
    "reset_tracer",
]


class Span:
    """One completed or in-flight pipeline stage."""

    __slots__ = ("name", "meta", "start", "end", "children", "counters")

    def __init__(self, name: str, meta: dict[str, Any]) -> None:
        self.name = name
        self.meta = meta
        self.start = 0.0
        self.end = 0.0
        self.children: list[Span] = []
        self.counters: dict[str, int] = {}

    @property
    def duration(self) -> float:
        """Wall-clock seconds between enter and exit."""
        return self.end - self.start

    @property
    def self_time(self) -> float:
        """Duration not covered by child spans (never below zero)."""
        return max(0.0, self.duration - sum(c.duration for c in self.children))

    def walk(self) -> list["Span"]:
        """This span plus every descendant, depth-first preorder."""
        out = [self]
        for child in self.children:
            out.extend(child.walk())
        return out

    def to_dict(self, origin: Optional[float] = None) -> dict[str, Any]:
        """JSON-ready nested dict; times are seconds relative to ``origin``
        (the root's start when omitted), so traces carry no absolute
        clock values and diff cleanly across runs."""
        if origin is None:
            origin = self.start
        out: dict[str, Any] = {
            "name": self.name,
            "start": round(self.start - origin, 6),
            "duration": round(self.duration, 6),
            "self_time": round(self.self_time, 6),
        }
        if self.meta:
            out["meta"] = self.meta
        if self.counters:
            out["counters"] = self.counters
        if self.children:
            out["children"] = [c.to_dict(origin) for c in self.children]
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, {self.duration:.4f}s, "
            f"{len(self.children)} children)"
        )


class _SpanContext:
    """Context manager driving one live :class:`Span`."""

    __slots__ = ("_span", "_snapshot")

    def __init__(self, name: str, meta: dict[str, Any]) -> None:
        self._span = Span(name, meta)
        self._snapshot: dict[str, int] = {}

    def __enter__(self) -> Span:
        parent = _STACK[-1] if _STACK else None
        if parent is not None:
            parent.children.append(self._span)
        _STACK.append(self._span)
        self._snapshot = registry().counter_values()
        self._span.start = time.perf_counter()
        return self._span

    def __exit__(self, *exc: object) -> None:
        sp = self._span
        sp.end = time.perf_counter()
        before = self._snapshot
        deltas: dict[str, int] = {}
        for name, value in registry().counter_values().items():
            delta = value - before.get(name, 0)
            if delta:
                deltas[name] = delta
        # Counters a descendant already claimed belong to it: keep only
        # this span's unattributed remainder, so sums stay additive.  The
        # whole subtree must be walked — a child whose own remainder was
        # zero still has grandchildren holding claims.
        for child in sp.children:
            for node in child.walk():
                for name, delta in node.counters.items():
                    if name in deltas:
                        deltas[name] -= delta
                        if deltas[name] <= 0:
                            del deltas[name]
        sp.counters = deltas
        if _STACK and _STACK[-1] is sp:
            _STACK.pop()
        if not _STACK:
            _FINISHED.append(sp)


class _NoopSpanContext:
    """Shared do-nothing context manager for the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpanContext":
        return self

    def __exit__(self, *exc: object) -> None:
        pass


_NOOP_SPAN = _NoopSpanContext()
_STACK: list[Span] = []
_FINISHED: list[Span] = []


def span(name: str, **meta: Any) -> Any:
    """Open a (possibly nested) trace span named ``name``.

    ``meta`` keyword pairs (seed, n, step, ...) ride along into the JSONL
    export.  Returns a context manager; while tracing is disabled it is
    one shared no-op object and the call costs a flag test.
    """
    if not enabled():
        return _NOOP_SPAN
    return _SpanContext(name, meta)


def active_span() -> Optional[Span]:
    """The innermost open span, or None outside any span."""
    return _STACK[-1] if _STACK else None


def take_finished() -> list[Span]:
    """Drain and return the completed root spans, oldest first."""
    global _FINISHED
    out, _FINISHED = _FINISHED, []
    return out


def reset_tracer() -> None:
    """Drop all tracer state (open stack included) — tests/CLI restarts."""
    global _STACK, _FINISHED
    _STACK = []
    _FINISHED = []
