"""repro.obs — the unified observability layer (metrics, spans, traces).

One instrumentation substrate answers "what did this run do and where did
it spend its budget" for every experiment the engine can drive:

* :mod:`~repro.obs.metrics` — a process-local **metrics registry**
  (counters, gauges, histograms with fixed log-spaced buckets) fed by the
  engine's existing stats sources: distance-oracle cache hits/misses and
  inheritance counters, router tree/leg carryover, repair-ladder action
  outcomes, lossy-delivery tx/rx/lost ledgers.  The sources keep their
  dataclass APIs (:class:`~repro.net.oracle.OracleStats`,
  :class:`~repro.faults.delivery.DeliveryReport`, ...); the registry is a
  second sink the instrumented call sites publish into.
* :mod:`~repro.obs.trace` — **span-based tracing**: nested
  ``span("cluster")`` / ``span("labels")`` context managers recording
  wall time and per-span counter deltas across the full pipeline
  (cluster -> CDS -> labels -> router -> traffic epochs -> repair), with
  a shared no-op fast path when disabled.
* :mod:`~repro.obs.export` — **exporters**: a JSONL trace dump whose
  first line is a run **manifest** (seed, n, k, backend, git sha, config
  knobs — any bench/chaos run reproduces from its artifact alone), plus
  ASCII flame/metrics tables in the :mod:`repro.analysis.ascii_plot`
  idiom.

Everything is gated on one switch — :func:`set_enabled` / the
``REPRO_TRACE`` environment variable — and **off by default**: while
disabled every ``span(...)`` returns one shared no-op context manager,
every metric helper returns a shared no-op instrument, and the registry
stays empty (the bench-smoke overhead gate holds the disabled-mode cost
of the instrumented quick pipeline within 2%).

Surface:

* library — ``with span("stage"): ...``, ``counter("x").add()``,
  ``registry().snapshot()``, ``write_trace(path, take_finished(),
  run_manifest(seed=..., n=...))``;
* CLI — ``repro-khop stats`` prints the metrics/span summary of an
  instrumented quick run; ``repro-khop traffic|mobility|chaos --trace
  out.jsonl`` records any experiment, and chaos repro lines carry the
  trace path so a violation's artifact is named in the failure itself.

Zero third-party dependencies: this package imports only the standard
library, so it can wrap every layer (including numpy-free callers)
without cycles.
"""

from .export import (
    read_trace,
    render_metrics,
    render_trace_summary,
    run_manifest,
    write_trace,
)
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    enabled,
    gauge,
    histogram,
    publish_counters,
    publish_oracle_stats,
    registry,
    reset,
    set_enabled,
)
from .trace import Span, active_span, reset_tracer, span, take_finished

__all__ = [
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "counter",
    "gauge",
    "histogram",
    "enabled",
    "set_enabled",
    "registry",
    "reset",
    "publish_counters",
    "publish_oracle_stats",
    # tracing
    "Span",
    "span",
    "active_span",
    "take_finished",
    "reset_tracer",
    # export
    "run_manifest",
    "write_trace",
    "read_trace",
    "render_trace_summary",
    "render_metrics",
]
