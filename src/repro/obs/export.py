"""Trace/manifest exporters: JSONL dump, run manifest, ASCII summaries.

The on-disk format is JSON Lines, one record per line, ``type``-tagged:

* line 1 — ``{"type": "manifest", ...}``: everything needed to reproduce
  the run (seed, n, k, backend, command knobs, git sha, python version);
* one ``{"type": "span", ...}`` line per completed **root** span, with
  the whole child tree nested inside (times relative to the root start);
* a final ``{"type": "metrics", ...}`` line holding the registry
  snapshot.

:func:`render_trace_summary` prints the span tree as an indented ASCII
flame table (self-time bars, the idiom of
:mod:`repro.analysis.ascii_plot`), and :func:`render_metrics` the
registry as aligned name/value tables — both for ``repro-khop stats``
and the ``--trace`` epilogue.
"""

from __future__ import annotations

import json
import platform
import subprocess
import time
from pathlib import Path
from typing import Any, Optional, Sequence, Union

from .metrics import MetricsRegistry, registry
from .trace import Span

__all__ = [
    "run_manifest",
    "write_trace",
    "read_trace",
    "render_trace_summary",
    "render_metrics",
]

#: Format tag written into every manifest (bump on breaking changes).
TRACE_SCHEMA = "repro-khop-trace/1"

#: Glyphs for the self-time bars (ascii_plot idiom: coarse, grep-able).
_BAR = "#"
_BAR_WIDTH = 24


def _git_sha() -> str:
    """The repository HEAD sha, or ``"unknown"`` outside a work tree."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=Path(__file__).resolve().parent,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def run_manifest(**knobs: Any) -> dict[str, Any]:
    """A reproducibility manifest for one instrumented run.

    ``knobs`` are the run's configuration (seed, n, k, backend,
    algorithm, flows, ...) verbatim; the environment fields (git sha,
    python, timestamp) are filled in here so every trace artifact is
    self-describing.
    """
    return {
        "type": "manifest",
        "schema": TRACE_SCHEMA,
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "git_sha": _git_sha(),
        "python": platform.python_version(),
        "knobs": {k: knobs[k] for k in sorted(knobs)},
    }


def write_trace(
    path: Union[str, Path],
    spans: Sequence[Span],
    manifest: dict[str, Any],
    metrics: Optional[MetricsRegistry] = None,
) -> Path:
    """Write manifest + spans + metrics snapshot as JSONL; returns path."""
    metrics = metrics if metrics is not None else registry()
    path = Path(path)
    lines = [json.dumps(manifest, sort_keys=True)]
    for sp in spans:
        lines.append(
            json.dumps({"type": "span", **sp.to_dict()}, sort_keys=True)
        )
    lines.append(
        json.dumps(
            {"type": "metrics", **metrics.snapshot()}, sort_keys=True
        )
    )
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path


def read_trace(
    path: Union[str, Path],
) -> tuple[dict[str, Any], list[dict[str, Any]], dict[str, Any]]:
    """Parse a JSONL trace back into ``(manifest, spans, metrics)``.

    Spans come back as the nested dicts :meth:`Span.to_dict` produced
    (name/start/duration/self_time/meta/counters/children) — the
    round-trip contract the obs test suite asserts.
    """
    manifest: dict[str, Any] = {}
    spans: list[dict[str, Any]] = []
    metrics: dict[str, Any] = {}
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        if not line.strip():
            continue
        record = json.loads(line)
        kind = record.get("type")
        if kind == "manifest":
            manifest = record
        elif kind == "span":
            spans.append(record)
        elif kind == "metrics":
            metrics = record
    return manifest, spans, metrics


def _flatten(
    node: dict[str, Any], depth: int, out: list[tuple[int, dict[str, Any]]]
) -> None:
    out.append((depth, node))
    for child in node.get("children", ()):
        _flatten(child, depth + 1, out)


def render_trace_summary(spans: Sequence[Union[Span, dict[str, Any]]]) -> str:
    """Indented ASCII flame table of one or more span trees.

    One row per span: indented name, duration, self time, a self-time bar
    scaled to the tallest root, and the span's attributed counters.
    Accepts live :class:`Span` objects or :func:`read_trace` dicts.
    """
    trees = [
        sp.to_dict() if isinstance(sp, Span) else sp for sp in spans
    ]
    if not trees:
        return "no spans recorded"
    rows: list[tuple[int, dict[str, Any]]] = []
    for tree in trees:
        _flatten(tree, 0, rows)
    total = max(tree["duration"] for tree in trees) or 1.0

    def _label(depth: int, node: dict[str, Any]) -> str:
        label = "  " * depth + node["name"]
        meta = node.get("meta")
        if meta:
            label += (
                "[" + ",".join(f"{k}={v}" for k, v in meta.items()) + "]"
            )
        return label

    name_width = max(len(_label(d, n)) for d, n in rows) + 2
    lines = [
        f"{'span':<{name_width}} {'total':>9} {'self':>9}  self-time",
        "-" * (name_width + 20 + _BAR_WIDTH),
    ]
    for depth, node in rows:
        label = _label(depth, node)
        bar = _BAR * max(
            1 if node["self_time"] > 0 else 0,
            round(_BAR_WIDTH * node["self_time"] / total),
        )
        extra = ""
        counters = node.get("counters")
        if counters:
            top = sorted(counters.items(), key=lambda kv: -kv[1])[:3]
            extra = "  " + " ".join(f"{k}={v}" for k, v in top)
        lines.append(
            f"{label:<{name_width}} {node['duration']:>8.3f}s "
            f"{node['self_time']:>8.3f}s  {bar}{extra}"
        )
    covered = sum(n["self_time"] for _, n in rows)
    lines.append(
        f"{'sum of self-times':<{name_width}} {covered:>8.3f}s "
        f"({covered / total:.1%} of tallest root)"
    )
    return "\n".join(lines)


def render_metrics(metrics: Optional[MetricsRegistry] = None) -> str:
    """Aligned tables of every registered counter/gauge/histogram."""
    snap = (metrics if metrics is not None else registry()).snapshot()
    counters: dict[str, int] = snap["counters"]  # type: ignore[assignment]
    gauges: dict[str, float] = snap["gauges"]  # type: ignore[assignment]
    hists: dict[str, Any] = snap["histograms"]  # type: ignore[assignment]
    if not (counters or gauges or hists):
        return "no metrics recorded (is the observability layer enabled?)"
    names = (
        list(counters) + list(gauges) + [f"{n} (hist)" for n in hists]
    )
    width = max(len(n) for n in names) + 2
    lines: list[str] = []
    if counters:
        lines.append("counters:")
        lines += [
            f"  {name:<{width}} {value:>12}"
            for name, value in counters.items()
        ]
    if gauges:
        if lines:
            lines.append("")
        lines.append("gauges:")
        lines += [
            f"  {name:<{width}} {value:>12g}"
            for name, value in gauges.items()
        ]
    if hists:
        if lines:
            lines.append("")
        lines.append("histograms:")
        for name, h in hists.items():
            lines.append(
                f"  {name:<{width}} count={h['count']} "
                f"mean={h['sum'] / h['count'] if h['count'] else 0.0:.2f}"
            )
            peak = max(h["counts"]) or 1
            for bound, cnt in zip(h["bounds"], h["counts"]):
                if cnt:
                    bar = _BAR * max(1, round(_BAR_WIDTH * cnt / peak))
                    lines.append(
                        f"    <= {bound:>12g}  {cnt:>8}  {bar}"
                    )
            if h["counts"][-1]:
                cnt = h["counts"][-1]
                bar = _BAR * max(1, round(_BAR_WIDTH * cnt / peak))
                lines.append(f"    >  {h['bounds'][-1]:>12g}  {cnt:>8}  {bar}")
    return "\n".join(lines)
