"""Figure 5 — CDS size vs N in sparse networks (average degree D = 6).

Four panels (k = 1..4), five curves each (NC-Mesh, AC-Mesh, NC-LMST,
AC-LMST, G-MST).  Expected shape per the paper: near-linear growth in N;
mesh above LMST; A-NCR helps for k > 1; G-MST lowest; AC-LMST close to
G-MST.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..analysis.sweep import SweepResult
from .common import PAPER_NS, cds_sweep, render_cds_panels, save_sweep_csv

__all__ = ["DEGREE", "run", "render", "main"]

#: Sparse-network average degree of Figure 5.
DEGREE = 6.0


def run(
    *,
    trials: Optional[int] = None,
    ks: Sequence[int] = (1, 2, 3, 4),
    ns: Sequence[int] = PAPER_NS,
) -> SweepResult:
    """Run the Figure-5 sweep (trials default to the paper's 100/±1% rule)."""
    return cds_sweep(DEGREE, ks=ks, ns=ns, trials=trials)


def render(result: SweepResult) -> str:
    """Render all panels."""
    return render_cds_panels(result, DEGREE, figure_name="Figure 5")


def main() -> SweepResult:
    """Run, print, and export ``results/figure5.csv``."""
    result = run()
    print(render(result))
    save_sweep_csv(result, "figure5")
    return result


if __name__ == "__main__":  # pragma: no cover
    main()
