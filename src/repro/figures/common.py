"""Shared machinery for the figure drivers.

Every driver follows the same contract:

* ``run(...) -> data`` — compute the figure's data (respecting the
  ``REPRO_TRIALS`` budget so benchmarks stay fast);
* ``render(data) -> str`` — tables + ASCII plots;
* ``main()`` — run, print, and write ``results/<figure>.csv``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Sequence

from ..analysis.ascii_plot import line_plot
from ..analysis.sweep import SweepConfig, SweepResult, default_trial_budget, run_sweep
from ..analysis.tables import sweep_table, write_csv
from ..core.pipeline import ALGORITHMS

__all__ = [
    "RESULTS_DIR",
    "PAPER_NS",
    "cds_sweep",
    "render_cds_panels",
    "save_sweep_csv",
]

#: Default output directory for CSV artifacts.
RESULTS_DIR = Path(__file__).resolve().parents[3] / "results"

#: Node counts swept by the paper ("from 50 to 200").
PAPER_NS: tuple[int, ...] = (50, 80, 110, 140, 170, 200)


def cds_sweep(
    degree: float,
    *,
    ks: Sequence[int] = (1, 2, 3, 4),
    ns: Sequence[int] = PAPER_NS,
    algorithms: Sequence[str] = ALGORITHMS,
    trials: Optional[int] = None,
    base_seed: int = 20050610,
) -> SweepResult:
    """Run the CDS-size sweep behind Figures 5/6/7."""
    budget = trials if trials is not None else default_trial_budget()
    config = SweepConfig(
        ns=tuple(ns),
        degrees=(float(degree),),
        ks=tuple(ks),
        algorithms=tuple(algorithms),
        max_trials=budget,
        min_trials=min(10, budget),
        base_seed=base_seed,
    )
    return run_sweep(config)


def render_cds_panels(
    result: SweepResult, degree: float, *, figure_name: str
) -> str:
    """Render one panel per k: table + ASCII plot of CDS size vs N."""
    chunks = []
    for k in result.config.ks:
        series = {
            alg: [
                (float(n), stat.mean)
                for n, stat in result.series("cds_size", alg, degree, k)
            ]
            for alg in result.config.algorithms
        }
        chunks.append(f"--- {figure_name} (k = {k}, D = {degree:g}) ---")
        chunks.append(sweep_table(result, degree, k, "cds_size"))
        chunks.append(
            line_plot(
                series,
                title=f"{figure_name}: size of CDS vs N (k={k}, D={degree:g})",
                xlabel="number of nodes",
                ylabel="size of CDS",
            )
        )
    return "\n\n".join(chunks)


def save_sweep_csv(result: SweepResult, name: str) -> Path:
    """Write the sweep's flat rows to ``results/<name>.csv``."""
    return write_csv(RESULTS_DIR / f"{name}.csv", result.to_csv_rows())
