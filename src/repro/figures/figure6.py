"""Figure 6 — CDS size vs N in dense networks (average degree D = 10).

Same panels as Figure 5 at D = 10.  Expected differences per the paper:
fewer clusterheads and gateways overall, same algorithm ordering, and a
smaller AC-LMST advantage over NC-LMST.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..analysis.sweep import SweepResult
from .common import PAPER_NS, cds_sweep, render_cds_panels, save_sweep_csv

__all__ = ["DEGREE", "run", "render", "main"]

#: Dense-network average degree of Figure 6.
DEGREE = 10.0


def run(
    *,
    trials: Optional[int] = None,
    ks: Sequence[int] = (1, 2, 3, 4),
    ns: Sequence[int] = PAPER_NS,
) -> SweepResult:
    """Run the Figure-6 sweep."""
    return cds_sweep(DEGREE, ks=ks, ns=ns, trials=trials)


def render(result: SweepResult) -> str:
    """Render all panels."""
    return render_cds_panels(result, DEGREE, figure_name="Figure 6")


def main() -> SweepResult:
    """Run, print, and export ``results/figure6.csv``."""
    result = run()
    print(render(result))
    save_sweep_csv(result, "figure6")
    return result


if __name__ == "__main__":  # pragma: no cover
    main()
