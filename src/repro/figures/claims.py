"""Programmatic checks of the paper's six §4 summary claims.

The simulation section closes with six qualitative findings.  Given the
Figure-5/6/7 sweep data, :func:`check_claims` evaluates each one and
returns machine-checkable verdicts with numeric evidence; EXPERIMENTS.md
records the output, and the claims benchmark asserts the core ones hold.

The six claims (paraphrased):

1. A-NCR reduces the number of gateway nodes (AC-Mesh < NC-Mesh, k > 1).
2. AC-LMST (A-NCR + extended LMST) reduces gateways further (vs AC-Mesh).
3. The approaches scale: CDS size grows smoothly (near-linearly) with N in
   both sparse and dense networks.
4. LMST is more effective than A-NCR (the Mesh->LMST saving exceeds the
   NC->AC saving), and AC-LMST's edge over NC-LMST is small, especially in
   dense networks.
5. Larger k gives fewer clusterheads but more gateways, and a smaller
   total CDS.
6. AC-LMST is close to the centralized G-MST lower bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..analysis.sweep import SweepResult

__all__ = ["ClaimVerdict", "check_claims", "render_verdicts"]


@dataclass(frozen=True)
class ClaimVerdict:
    """Outcome of one claim check."""

    claim_id: int
    description: str
    holds: bool
    evidence: str


def _mean_over_cells(result: SweepResult, metric: str, alg: str, degree: float, ks) -> float:
    vals = []
    for k in ks:
        for n in result.config.ns:
            cell = result.cell(n, degree, k)
            vals.append(getattr(cell, metric)[alg].mean)
    return float(np.mean(vals))


def _linearity(result: SweepResult, alg: str, degree: float, k: int) -> float:
    """R^2 of a linear fit of CDS size vs N (scalability proxy)."""
    ns = np.array(result.config.ns, dtype=float)
    ys = np.array(
        [result.cell(int(n), degree, k).cds_size[alg].mean for n in ns]
    )
    if np.allclose(ys, ys.mean()):
        return 1.0
    coeffs = np.polyfit(ns, ys, 1)
    pred = np.polyval(coeffs, ns)
    ss_res = float(((ys - pred) ** 2).sum())
    ss_tot = float(((ys - ys.mean()) ** 2).sum())
    return 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0


def check_claims(
    sparse: SweepResult,
    dense: Optional[SweepResult] = None,
) -> list[ClaimVerdict]:
    """Evaluate the six claims on sparse (D=6) and optional dense (D=10) data.

    ``sparse`` must cover the five algorithms and k = 1..4; claims that need
    dense data degrade gracefully when ``dense`` is None.
    """
    d_sparse = sparse.config.degrees[0]
    ks = [k for k in sparse.config.ks if k > 1]
    verdicts: list[ClaimVerdict] = []

    # Claim 1: A-NCR reduces gateways (k > 1).
    nc = _mean_over_cells(sparse, "gateways", "NC-Mesh", d_sparse, ks)
    ac = _mean_over_cells(sparse, "gateways", "AC-Mesh", d_sparse, ks)
    verdicts.append(
        ClaimVerdict(
            1,
            "A-NCR reduces gateway count (AC-Mesh < NC-Mesh for k>1)",
            ac < nc,
            f"mean gateways over k>1 cells: NC-Mesh {nc:.2f}, AC-Mesh {ac:.2f}",
        )
    )

    # Claim 2: AC-LMST reduces further.
    aclmst = _mean_over_cells(sparse, "gateways", "AC-LMST", d_sparse, ks)
    verdicts.append(
        ClaimVerdict(
            2,
            "AC-LMST reduces gateways further (AC-LMST < AC-Mesh)",
            aclmst < ac,
            f"mean gateways: AC-Mesh {ac:.2f}, AC-LMST {aclmst:.2f}",
        )
    )

    # Claim 3: scalability — CDS size ~ linear in N for every algorithm.
    r2s = [
        _linearity(sparse, alg, d_sparse, k)
        for alg in sparse.config.algorithms
        for k in sparse.config.ks
    ]
    worst = min(r2s)
    verdicts.append(
        ClaimVerdict(
            3,
            "CDS size grows near-linearly with N (scalable)",
            worst > 0.8,
            f"worst linear-fit R^2 across algorithms/k: {worst:.3f}",
        )
    )

    # Claim 4: LMST saves more than A-NCR; AC-LMST ~ NC-LMST (denser => closer).
    nclmst = _mean_over_cells(sparse, "gateways", "NC-LMST", d_sparse, ks)
    lmst_saving = nc - nclmst
    ancr_saving = nc - ac
    close_sparse = abs(aclmst - nclmst) / max(nclmst, 1.0)
    evidence = (
        f"Mesh->LMST saves {lmst_saving:.2f}, NC->AC saves {ancr_saving:.2f}; "
        f"|AC-LMST - NC-LMST|/NC-LMST = {close_sparse:.2%} (sparse)"
    )
    holds4 = lmst_saving > ancr_saving
    if dense is not None:
        d_dense = dense.config.degrees[0]
        ks_d = [k for k in dense.config.ks if k > 1]
        nclmst_d = _mean_over_cells(dense, "gateways", "NC-LMST", d_dense, ks_d)
        aclmst_d = _mean_over_cells(dense, "gateways", "AC-LMST", d_dense, ks_d)
        close_dense = abs(aclmst_d - nclmst_d) / max(nclmst_d, 1.0)
        evidence += f"; dense gap {close_dense:.2%}"
    verdicts.append(
        ClaimVerdict(4, "LMST is more effective than A-NCR", holds4, evidence)
    )

    # Claim 5: larger k => fewer heads and smaller CDS (AC-LMST).
    heads_by_k = []
    cds_by_k = []
    for k in sparse.config.ks:
        hs, cs = [], []
        for n in sparse.config.ns:
            cell = sparse.cell(n, d_sparse, k)
            hs.append(cell.num_heads.mean)
            cs.append(cell.cds_size["AC-LMST"].mean)
        heads_by_k.append(float(np.mean(hs)))
        cds_by_k.append(float(np.mean(cs)))
    heads_monotone = all(a > b for a, b in zip(heads_by_k, heads_by_k[1:]))
    cds_monotone = all(a > b for a, b in zip(cds_by_k, cds_by_k[1:]))
    verdicts.append(
        ClaimVerdict(
            5,
            "larger k => fewer clusterheads and smaller CDS",
            heads_monotone and cds_monotone,
            f"mean heads by k: {[round(h,1) for h in heads_by_k]}; "
            f"mean CDS by k: {[round(c,1) for c in cds_by_k]}",
        )
    )

    # Claim 6: AC-LMST close to G-MST.
    gmst_cds = _mean_over_cells(sparse, "cds_size", "G-MST", d_sparse, sparse.config.ks)
    aclmst_cds = _mean_over_cells(
        sparse, "cds_size", "AC-LMST", d_sparse, sparse.config.ks
    )
    ratio = aclmst_cds / gmst_cds if gmst_cds else float("inf")
    verdicts.append(
        ClaimVerdict(
            6,
            "AC-LMST is close to the G-MST lower bound",
            ratio <= 1.30,
            f"mean CDS size: AC-LMST {aclmst_cds:.2f}, G-MST {gmst_cds:.2f} "
            f"(ratio {ratio:.3f})",
        )
    )
    return verdicts


def render_verdicts(verdicts: list[ClaimVerdict]) -> str:
    """Human-readable claim report."""
    lines = ["Paper §4 summary-claim verification:"]
    for v in verdicts:
        flag = "HOLDS " if v.holds else "FAILS "
        lines.append(f"  [{flag}] ({v.claim_id}) {v.description}")
        lines.append(f"           {v.evidence}")
    return "\n".join(lines)
