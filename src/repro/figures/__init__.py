"""Figure/experiment drivers: one module per paper artifact + ablations."""

from . import ablations, claims, common, figure4, figure5, figure6, figure7, overhead

__all__ = [
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "claims",
    "ablations",
    "overhead",
    "common",
]
