"""Communication overhead vs k (the paper's §5 "future work" experiment).

"Communication overhead increases with the growth of the value of k.  We
will perform some in-depth simulation which should help in analyzing the
tradeoff between communication overhead and efficiency of k-hop."

This driver runs the *distributed* pipeline on the round simulator and
reports, per k: message transmissions by protocol phase (clustering /
adjacency / gateway), rounds to quiescence, and the resulting CDS size —
making the overhead-vs-CDS-quality tradeoff explicit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..analysis.tables import format_table, write_csv
from ..analysis.sweep import default_trial_budget
from ..net.topology import random_topology
from ..sim.runner import run_distributed_pipeline
from .common import RESULTS_DIR

__all__ = ["OverheadRow", "run", "render", "main"]


@dataclass(frozen=True)
class OverheadRow:
    """Mean per-k overhead of the distributed AC-LMST pipeline."""

    k: int
    clustering_tx: float
    adjacency_tx: float
    gateway_tx: float
    total_tx: float
    rounds: float
    cds_size: float
    trials: int


def run(
    *,
    n: int = 100,
    degree: float = 6.0,
    ks: Sequence[int] = (1, 2, 3, 4),
    algorithm: str = "AC-LMST",
    trials: Optional[int] = None,
    base_seed: int = 917,
) -> list[OverheadRow]:
    """Measure distributed message overhead for each k."""
    budget = trials if trials is not None else max(1, default_trial_budget(20) // 2)
    rows = []
    for k in ks:
        cl_tx, adj_tx, gw_tx, tot, rounds, cds = [], [], [], [], [], []
        for t in range(budget):
            topo = random_topology(n, degree, seed=base_seed + 1000 * k + t)
            res = run_distributed_pipeline(topo.graph, k, algorithm)
            phases = res.stats_by_phase
            cl_tx.append(phases["clustering"].transmissions)
            adj_tx.append(
                phases["adjacency"].transmissions if "adjacency" in phases else 0
            )
            gw_tx.append(phases["gateway"].transmissions)
            tot.append(res.stats.transmissions)
            rounds.append(res.stats.rounds)
            cds.append(len(res.cds))
        rows.append(
            OverheadRow(
                k=k,
                clustering_tx=float(np.mean(cl_tx)),
                adjacency_tx=float(np.mean(adj_tx)),
                gateway_tx=float(np.mean(gw_tx)),
                total_tx=float(np.mean(tot)),
                rounds=float(np.mean(rounds)),
                cds_size=float(np.mean(cds)),
                trials=budget,
            )
        )
    return rows


def render(rows: list[OverheadRow]) -> str:
    """Overhead table."""
    table = format_table(
        ["k", "clustering tx", "adjacency tx", "gateway tx", "total tx", "rounds", "CDS size"],
        [
            (
                r.k,
                f"{r.clustering_tx:.0f}",
                f"{r.adjacency_tx:.0f}",
                f"{r.gateway_tx:.0f}",
                f"{r.total_tx:.0f}",
                f"{r.rounds:.0f}",
                f"{r.cds_size:.1f}",
            )
            for r in rows
        ],
    )
    return (
        "Communication overhead of the distributed AC-LMST pipeline "
        "(N=100, D=6):\n" + table
    )


def main() -> list[OverheadRow]:
    """Run, print, and export ``results/overhead.csv``."""
    rows = run()
    print(render(rows))
    write_csv(
        RESULTS_DIR / "overhead.csv",
        [
            {
                "k": r.k,
                "clustering_tx": round(r.clustering_tx, 2),
                "adjacency_tx": round(r.adjacency_tx, 2),
                "gateway_tx": round(r.gateway_tx, 2),
                "total_tx": round(r.total_tx, 2),
                "rounds": round(r.rounds, 2),
                "cds_size": round(r.cds_size, 2),
                "trials": r.trials,
            }
            for r in rows
        ],
    )
    return rows


if __name__ == "__main__":  # pragma: no cover
    main()
