"""Figure 4 — a single-instance gallery of the gateway algorithms.

The paper shows one 100-node, average-degree-6 random network and the
backbones produced by G-MST, NC-Mesh, NC-LMST and AC-LMST (its reported
instance has 7 clusterheads and 23 / 35 / 28 / 26 gateways; the caption
says k = 2 while the body text says k = 3 — we generate both, defaulting
to the caption).  Random instances differ, so the reproduction reports its
own instance's counts; the *ordering* (mesh most, LMST fewer, G-MST
fewest) is the reproducible part and is what the benchmark asserts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from ..analysis.ascii_plot import scatter_plot
from ..analysis.tables import format_table, write_csv
from ..cds.verify import verify_backbone
from ..core.clustering import khop_cluster
from ..core.pipeline import BackboneResult, build_all_backbones
from ..net.paths import PathOracle
from ..net.topology import Topology, random_topology
from .common import RESULTS_DIR

__all__ = ["Figure4Data", "run", "render", "main"]

#: Figure-4 algorithm panels, in the paper's order.
PANELS = ("G-MST", "NC-Mesh", "NC-LMST", "AC-LMST")


@dataclass(frozen=True)
class Figure4Data:
    """One generated instance and its four backbones."""

    topology: Topology
    k: int
    results: Mapping[str, BackboneResult]

    @property
    def num_heads(self) -> int:
        return len(next(iter(self.results.values())).heads)

    def gateway_counts(self) -> dict[str, int]:
        return {alg: res.num_gateways for alg, res in self.results.items()}


def run(
    *, n: int = 100, degree: float = 6.0, k: int = 2, seed: int = 4, trials: Optional[int] = None
) -> Figure4Data:
    """Build the Figure-4 instance (``trials`` accepted for driver parity)."""
    topo = random_topology(n, degree, seed=seed)
    clustering = khop_cluster(topo.graph, k)
    oracle = PathOracle(topo.graph)
    results = build_all_backbones(clustering, PANELS, oracle=oracle)
    for res in results.values():
        verify_backbone(res)
    return Figure4Data(topology=topo, k=k, results=results)


def render(data: Figure4Data) -> str:
    """Tables + per-algorithm role scatter plots."""
    counts = data.gateway_counts()
    rows = [
        (alg, data.num_heads, counts[alg], data.num_heads + counts[alg])
        for alg in PANELS
    ]
    out = [
        f"Figure 4 reproduction: N={data.topology.n}, "
        f"D={data.topology.graph.average_degree():.1f}, k={data.k}, "
        f"{data.num_heads} clusterheads",
        format_table(["algorithm", "heads", "gateways", "CDS"], rows),
    ]
    pos = data.topology.positions
    for alg in PANELS:
        res = data.results[alg]
        heads = set(res.heads)
        roles = {
            "head": [tuple(pos[u]) for u in sorted(heads)],
            "gateway": [tuple(pos[u]) for u in sorted(res.gateways)],
            "member": [
                tuple(pos[u])
                for u in data.topology.graph.nodes()
                if u not in heads and u not in res.gateways
            ],
        }
        out.append(
            scatter_plot(
                {"member": roles["member"], "gateway": roles["gateway"], "head": roles["head"]},
                title=f"{alg}: {counts[alg]} gateways",
            )
        )
    return "\n\n".join(out)


def main() -> Figure4Data:
    """Run, print, and export ``results/figure4.csv``."""
    data = run()
    print(render(data))
    rows = [
        {
            "algorithm": alg,
            "heads": data.num_heads,
            "gateways": cnt,
            "cds": data.num_heads + cnt,
        }
        for alg, cnt in data.gateway_counts().items()
    ]
    write_csv(RESULTS_DIR / "figure4.csv", rows)
    return data


if __name__ == "__main__":  # pragma: no cover
    main()
