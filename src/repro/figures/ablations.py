"""Ablation studies over the paper's pluggable design choices.

The paper names alternatives it does not evaluate head-to-head; these
ablations fill that gap:

* **membership policies** (§3: ID-based vs distance-based vs size-based) —
  effect on cluster-size balance, member-to-head distance, and final CDS;
* **priority schemes** (§2/§3.3: lowest-ID vs highest-degree vs
  random-timer vs residual-energy) — effect on head count and CDS size;
* **neighbor rules at k = 1** (§3.1: NC / Wu-Lou 2.5-hop / A-NCR) —
  neighbor-pair counts, confirming the inclusion chain A-NCR ⊆ Wu-Lou ⊆ NC
  that motivates A-NCR as the tightest safe rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..analysis.sweep import default_trial_budget
from ..analysis.tables import format_table, write_csv
from ..core.clustering import khop_cluster
from ..core.neighbor import (
    ancr_neighbors,
    nc_neighbors,
    neighbor_pairs,
    wu_lou_neighbors,
)
from ..core.pipeline import build_backbone
from ..core.priorities import LowestID, HighestDegree, RandomTimer
from ..net.topology import random_topology
from .common import RESULTS_DIR

__all__ = [
    "MembershipRow",
    "PriorityRow",
    "NeighborRuleRow",
    "run_membership",
    "run_priority",
    "run_neighbor_rules",
    "render",
    "main",
]


@dataclass(frozen=True)
class MembershipRow:
    """Mean metrics for one membership policy."""

    policy: str
    cluster_size_std: float
    mean_head_distance: float
    cds_size: float


@dataclass(frozen=True)
class PriorityRow:
    """Mean metrics for one priority scheme."""

    scheme: str
    num_heads: float
    cds_size: float


@dataclass(frozen=True)
class NeighborRuleRow:
    """Mean neighbor-pair counts for one k=1 neighbor rule."""

    rule: str
    pairs: float


def run_membership(
    *,
    n: int = 100,
    degree: float = 6.0,
    k: int = 2,
    trials: Optional[int] = None,
    base_seed: int = 31,
) -> list[MembershipRow]:
    """Compare the three §3 membership policies."""
    budget = trials if trials is not None else default_trial_budget(30)
    rows = []
    for policy in ("id-based", "distance-based", "size-based"):
        stds, dists, cds = [], [], []
        for t in range(budget):
            topo = random_topology(n, degree, seed=base_seed + t)
            cl = khop_cluster(topo.graph, k, membership=policy)
            sizes = list(cl.cluster_sizes().values())
            stds.append(float(np.std(sizes)))
            dists.append(
                float(np.mean([cl.head_distance(u) for u in cl.non_heads()]))
            )
            cds.append(float(build_backbone(cl, "AC-LMST").cds_size))
        rows.append(
            MembershipRow(
                policy=policy,
                cluster_size_std=float(np.mean(stds)),
                mean_head_distance=float(np.mean(dists)),
                cds_size=float(np.mean(cds)),
            )
        )
    return rows


def run_priority(
    *,
    n: int = 100,
    degree: float = 6.0,
    k: int = 2,
    trials: Optional[int] = None,
    base_seed: int = 57,
) -> list[PriorityRow]:
    """Compare clusterhead priority schemes."""
    budget = trials if trials is not None else default_trial_budget(30)
    schemes = {
        "lowest-id": lambda t: LowestID(),
        "highest-degree": lambda t: HighestDegree(),
        "random-timer": lambda t: RandomTimer(seed=base_seed * 7919 + t),
    }
    rows = []
    for name, factory in schemes.items():
        heads, cds = [], []
        for t in range(budget):
            topo = random_topology(n, degree, seed=base_seed + t)
            cl = khop_cluster(topo.graph, k, priority=factory(t))
            heads.append(float(cl.num_clusters))
            cds.append(float(build_backbone(cl, "AC-LMST").cds_size))
        rows.append(
            PriorityRow(
                scheme=name,
                num_heads=float(np.mean(heads)),
                cds_size=float(np.mean(cds)),
            )
        )
    return rows


def run_neighbor_rules(
    *,
    n: int = 100,
    degree: float = 6.0,
    trials: Optional[int] = None,
    base_seed: int = 73,
) -> list[NeighborRuleRow]:
    """Compare NC / Wu-Lou / A-NCR neighbor-pair counts at k = 1."""
    budget = trials if trials is not None else default_trial_budget(30)
    counts = {"NC(2k+1)": [], "Wu-Lou 2.5-hop": [], "A-NCR": []}
    for t in range(budget):
        topo = random_topology(n, degree, seed=base_seed + t)
        cl = khop_cluster(topo.graph, 1)
        counts["NC(2k+1)"].append(len(neighbor_pairs(nc_neighbors(cl))))
        counts["Wu-Lou 2.5-hop"].append(len(neighbor_pairs(wu_lou_neighbors(cl))))
        counts["A-NCR"].append(len(neighbor_pairs(ancr_neighbors(cl))))
    return [
        NeighborRuleRow(rule=name, pairs=float(np.mean(vals)))
        for name, vals in counts.items()
    ]


def render(
    membership: Sequence[MembershipRow],
    priority: Sequence[PriorityRow],
    neighbor: Sequence[NeighborRuleRow],
) -> str:
    """All three ablation tables."""
    return "\n\n".join(
        [
            "Ablation A1 — membership policy (N=100, D=6, k=2, AC-LMST):\n"
            + format_table(
                ["policy", "cluster-size std", "mean head distance", "CDS size"],
                [
                    (
                        r.policy,
                        f"{r.cluster_size_std:.2f}",
                        f"{r.mean_head_distance:.2f}",
                        f"{r.cds_size:.1f}",
                    )
                    for r in membership
                ],
            ),
            "Ablation A2 — priority scheme (N=100, D=6, k=2, AC-LMST):\n"
            + format_table(
                ["scheme", "clusterheads", "CDS size"],
                [
                    (r.scheme, f"{r.num_heads:.1f}", f"{r.cds_size:.1f}")
                    for r in priority
                ],
            ),
            "Ablation A3 — neighbor rule at k=1 (pairs to connect):\n"
            + format_table(
                ["rule", "mean neighbor pairs"],
                [(r.rule, f"{r.pairs:.1f}") for r in neighbor],
            ),
        ]
    )


def main() -> tuple[list[MembershipRow], list[PriorityRow], list[NeighborRuleRow]]:
    """Run all ablations, print, and export CSVs."""
    membership = run_membership()
    priority = run_priority()
    neighbor = run_neighbor_rules()
    print(render(membership, priority, neighbor))
    write_csv(
        RESULTS_DIR / "ablation_membership.csv",
        [r.__dict__ for r in membership],
    )
    write_csv(RESULTS_DIR / "ablation_priority.csv", [r.__dict__ for r in priority])
    write_csv(RESULTS_DIR / "ablation_neighbor.csv", [r.__dict__ for r in neighbor])
    return membership, priority, neighbor


if __name__ == "__main__":  # pragma: no cover
    main()
