"""Figure 7 — the effect of the clustering parameter k (D = 6, AC-LMST).

Two panels:

* (a) number of clusterheads vs N for k = 1..4 — larger k means fewer,
  bigger clusters;
* (b) CDS size vs N for k = 1..4 under LMSTGA/AC-LMST — larger k means a
  *smaller* total CDS even though each backbone link needs more gateways.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..analysis.ascii_plot import line_plot
from ..analysis.sweep import SweepResult
from ..analysis.tables import format_table
from .common import PAPER_NS, cds_sweep, save_sweep_csv

__all__ = ["DEGREE", "ALGORITHM", "run", "render", "main"]

DEGREE = 6.0
ALGORITHM = "AC-LMST"


def run(
    *,
    trials: Optional[int] = None,
    ks: Sequence[int] = (1, 2, 3, 4),
    ns: Sequence[int] = PAPER_NS,
) -> SweepResult:
    """Run the Figure-7 sweep (AC-LMST only)."""
    return cds_sweep(DEGREE, ks=ks, ns=ns, algorithms=(ALGORITHM,), trials=trials)


def render(result: SweepResult) -> str:
    """Both panels: clusterhead counts and CDS sizes by k."""
    ks = result.config.ks
    ns = result.config.ns

    heads_series = {}
    cds_series = {}
    rows = []
    for n in ns:
        row = [n]
        for k in ks:
            cell = result.cell(n, DEGREE, k)
            row.append(f"{cell.num_heads.mean:.1f}")
            row.append(f"{cell.cds_size[ALGORITHM].mean:.1f}")
        rows.append(row)
    for k in ks:
        heads_series[f"k={k}"] = [
            (float(n), result.cell(n, DEGREE, k).num_heads.mean) for n in ns
        ]
        cds_series[f"k={k}"] = [
            (float(n), result.cell(n, DEGREE, k).cds_size[ALGORITHM].mean)
            for n in ns
        ]
    headers = ["N"]
    for k in ks:
        headers += [f"heads k={k}", f"CDS k={k}"]
    return "\n\n".join(
        [
            f"Figure 7 reproduction (D={DEGREE:g}, gateway algorithm {ALGORITHM})",
            format_table(headers, rows),
            line_plot(
                heads_series,
                title="Figure 7(a): number of clusterheads vs N",
                xlabel="number of nodes",
                ylabel="clusterheads",
            ),
            line_plot(
                cds_series,
                title="Figure 7(b): number of nodes in CDS vs N",
                xlabel="number of nodes",
                ylabel="CDS size",
            ),
        ]
    )


def main() -> SweepResult:
    """Run, print, and export ``results/figure7.csv``."""
    result = run()
    print(render(result))
    save_sweep_csv(result, "figure7")
    return result


if __name__ == "__main__":  # pragma: no cover
    main()
