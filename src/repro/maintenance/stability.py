"""Clustering stability under mobility (§1's "combinatorially stable" claim).

The paper argues for small k because "network topology changes frequently
... small k may help to construct a combinatorially stable system, in
which the propagation of all topology updates is sufficiently fast to
reflect the topology change", and §5 promises a movement-sensitive
maintenance policy as future work.

:func:`simulate_stability` quantifies that tradeoff: nodes move under
random waypoint; at each step the unit-disk topology is re-snapshotted and
re-clustered, and we measure how much of the clustering and backbone
survived the step:

* **head churn** — fraction of clusterheads that changed;
* **membership churn** — fraction of nodes whose head assignment changed;
* **backbone churn** — Jaccard distance between consecutive CDS node sets;
* **re-clustering scope** — fraction of nodes whose k-hop neighborhood
  changed at all (a lower bound on the update traffic any maintenance
  policy must pay);
* **assignment survival** — whether the *previous* snapshot's clustering
  is still a valid k-hop clustering on the new graph
  (:func:`~repro.maintenance.repair.clustering_still_valid`): the cheap
  gate a movement-sensitive policy would run before re-clustering.

Successive snapshots are evolved through :meth:`Graph.with_edge_delta`
(the unit-disk edge set is diffed against the previous snapshot), so the
distance-oracle caches behind the affected-nodes and survival metrics
inherit across steps instead of rebuilding per snapshot.

Snapshots whose unit-disk graph is disconnected are skipped (the paper's
algorithms are defined on connected networks); the report counts them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections import deque

import numpy as np

from ..analysis.stats import jaccard_distance
from ..core.clustering import khop_cluster
from ..core.pipeline import build_backbone
from ..errors import InvalidParameterError
from ..net.mobility import RandomWaypoint, snapshot_edge_delta
from ..net.topology import Topology
from .repair import clustering_still_valid

__all__ = ["StabilityStep", "StabilityReport", "simulate_stability"]


@dataclass(frozen=True)
class StabilityStep:
    """Churn metrics between two consecutive connected snapshots."""

    step: int
    head_churn: float
    membership_churn: float
    backbone_jaccard_distance: float
    affected_nodes: float
    edges_changed: int
    assignment_survived: bool = True


@dataclass
class StabilityReport:
    """Aggregate stability metrics of one mobility run.

    Attributes:
        k: cluster radius used.
        steps: per-transition metrics (connected snapshot pairs only).
        skipped_disconnected: snapshots dropped for being disconnected.
    """

    k: int
    steps: list[StabilityStep] = field(default_factory=list)
    skipped_disconnected: int = 0

    def mean(self, metric: str) -> float:
        """Mean of one per-step metric over the run."""
        if not self.steps:
            return float("nan")
        return float(np.mean([getattr(s, metric) for s in self.steps]))


def _edge_set_connected(n: int, edges) -> bool:
    """Whether ``edges`` span all ``n`` nodes in one component.

    Matches :meth:`Graph.is_connected` on the same edge set, but runs on
    the raw snapshot edges *before* any graph is derived — so a
    disconnected snapshot is skipped without paying
    :meth:`Graph.with_edge_delta`'s eager oracle-cache inheritance for a
    graph that would be thrown away.
    """
    if n <= 1:
        return True
    adj: dict[int, list[int]] = {}
    for u, v in edges:
        adj.setdefault(u, []).append(v)
        adj.setdefault(v, []).append(u)
    seen = {0}
    queue = deque([0])
    while queue:
        u = queue.popleft()
        for w in adj.get(u, ()):
            if w not in seen:
                seen.add(w)
                queue.append(w)
    return len(seen) == n


def simulate_stability(
    topology: Topology,
    k: int,
    *,
    steps: int,
    speed: tuple[float, float] = (0.5, 1.5),
    seed: int = 0,
    algorithm: str = "AC-LMST",
) -> StabilityReport:
    """Move nodes, re-cluster each connected snapshot, measure churn.

    Args:
        topology: initial (connected) topology; its radius is reused for
            every snapshot.
        k: cluster radius.
        steps: mobility steps to simulate.
        speed: random-waypoint speed range, units per step.
        seed: RNG seed for the waypoint process.
        algorithm: backbone pipeline used for the backbone-churn metric.
    """
    if steps < 1:
        raise InvalidParameterError("steps must be >= 1")
    mob = RandomWaypoint(
        topology.positions,
        topology.area,
        speed,
        np.random.default_rng(seed),
    )
    report = StabilityReport(k=k)

    prev_graph = topology.graph
    prev_cl = khop_cluster(prev_graph, k)
    prev_backbone = build_backbone(prev_cl, algorithm)
    for step in range(1, steps + 1):
        mob.step()
        new_edges = mob.snapshot_edges(topology.radius)
        if not _edge_set_connected(prev_graph.n, new_edges):
            report.skipped_disconnected += 1
            continue
        added, removed = snapshot_edge_delta(prev_graph, new_edges)
        g = prev_graph.with_edge_delta(added, removed)
        survived = clustering_still_valid(prev_cl, g)
        cl = khop_cluster(g, k)
        backbone = build_backbone(cl, algorithm)

        prev_heads = set(prev_cl.heads)
        heads = set(cl.heads)
        head_churn = (
            1.0 - len(prev_heads & heads) / len(prev_heads | heads)
            if prev_heads | heads
            else 0.0
        )
        changed_members = sum(
            1
            for u in g.nodes()
            if cl.head_of[u] != prev_cl.head_of[u]
        )
        delta_edges = added + removed
        touched = {u for e in delta_edges for u in e}
        affected = set(g.nodes_within(sorted(touched), k)) if touched else set()
        report.steps.append(
            StabilityStep(
                step=step,
                head_churn=head_churn,
                membership_churn=changed_members / g.n,
                backbone_jaccard_distance=jaccard_distance(
                    prev_backbone.cds, backbone.cds
                ),
                affected_nodes=len(affected) / g.n,
                edges_changed=len(delta_edges),
                assignment_survived=survived,
            )
        )
        prev_graph, prev_cl, prev_backbone = g, cl, backbone
    return report
