"""Clusterhead rotation with residual-energy priority (§3.3).

"One way for power-aware design is to rotate the role of clusterhead to
prolong the average lifespan of each node ... residual energy level instead
of lowest ID can be used as node priority in the clustering process."

:func:`simulate_rotation` runs epochs of: cluster (with a chosen priority),
build the backbone, charge every node one epoch of role-dependent energy
drain, repeat.  Comparing ``scheme="energy"`` (re-elect by residual energy)
against ``scheme="static"`` (lowest-ID heads, never rotated) demonstrates
the qualitative claim: rotation spreads the clusterhead burden over many
nodes and raises the minimum residual energy across the network.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..core.clustering import khop_cluster
from ..core.pipeline import build_backbone
from ..core.priorities import LowestID, ResidualEnergy
from ..errors import InvalidParameterError
from ..net.energy import EnergyModel, EnergyParams
from ..net.graph import Graph

__all__ = ["RotationEpoch", "RotationReport", "simulate_rotation"]


@dataclass(frozen=True)
class RotationEpoch:
    """Per-epoch snapshot of the rotation simulation."""

    epoch: int
    heads: tuple[int, ...]
    cds_size: int
    min_residual: float
    mean_residual: float


@dataclass
class RotationReport:
    """Aggregate outcome of a rotation simulation.

    Attributes:
        scheme: ``"energy"`` or ``"static"``.
        epochs: per-epoch snapshots.
        head_service: node -> number of epochs it served as clusterhead.
        distinct_heads: how many different nodes ever led a cluster.
        final_min_residual: min residual energy after the last epoch.
    """

    scheme: str
    epochs: list[RotationEpoch] = field(default_factory=list)
    head_service: Counter = field(default_factory=Counter)

    @property
    def distinct_heads(self) -> int:
        return len(self.head_service)

    @property
    def final_min_residual(self) -> float:
        return self.epochs[-1].min_residual if self.epochs else float("nan")


def simulate_rotation(
    graph: Graph,
    k: int,
    *,
    epochs: int,
    scheme: str = "energy",
    algorithm: str = "AC-LMST",
    params: EnergyParams | None = None,
    rounds_per_epoch: int = 50,
) -> RotationReport:
    """Simulate ``epochs`` of clustering + energy drain.

    Args:
        graph: connected network.
        k: cluster radius.
        epochs: number of re-election epochs.
        scheme: ``"energy"`` (rotate by residual energy) or ``"static"``
            (lowest-ID election every epoch — same heads forever on a
            static graph).
        algorithm: backbone pipeline used to determine gateway drain.
        params: energy constants.
        rounds_per_epoch: idle rounds charged between elections.
    """
    if scheme not in ("energy", "static"):
        raise InvalidParameterError(f"unknown rotation scheme {scheme!r}")
    if epochs < 1:
        raise InvalidParameterError("epochs must be >= 1")
    model = EnergyModel(graph.n, params)
    report = RotationReport(scheme=scheme)
    for epoch in range(epochs):
        if scheme == "energy":
            priority = ResidualEnergy(model.residuals())
        else:
            priority = LowestID()
        clustering = khop_cluster(graph, k, priority=priority)
        backbone = build_backbone(clustering, algorithm)
        for h in clustering.heads:
            report.head_service[h] += 1
        residuals = model.residuals()
        report.epochs.append(
            RotationEpoch(
                epoch=epoch,
                heads=clustering.heads,
                cds_size=backbone.cds_size,
                min_residual=float(residuals.min()),
                mean_residual=float(residuals.mean()),
            )
        )
        for _ in range(rounds_per_epoch):
            model.charge_idle_round(set(backbone.cds))
    return report
