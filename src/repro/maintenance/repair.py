"""Node-failure handling (§3.3): role-dependent local repair.

The paper distinguishes three cases when a node "disappears":

* **member** (non-head, non-gateway) — "nothing needs to be done with
  respect to the existing CDS";
* **gateway** — "only the corresponding clusterhead needs to re-run the
  gateway selection process (to have a local fix)";
* **clusterhead** — "the clusterhead selection process is applied".

:func:`repair` implements exactly that escalation ladder and *validates*
each cheap fix before accepting it: removing a member can, in sparse
topologies, stretch another member's head distance beyond k (its only
k-hop path relayed through the failed node), in which case the repair
escalates to re-clustering and says so.  Every accepted repair is verified
(backbone connected, k-hop domination of survivors) on the post-failure
graph.

Failed nodes stay in the graph as isolated vertices (node numbering is
preserved for comparability); they are excluded from clusters, backbones
and all validity checks.

The returned :class:`RepairOutcome` reports the *scope* a real deployment
would touch (which clusterheads re-ran selection); the maintenance
benchmark aggregates this into the paper's locality argument: "Since the
number of clusterheads is relatively small ... the chance of re-applying
the clusterhead selection process is also small."
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

from ..core.clustering import Clustering, group_by_assignment, khop_cluster
from ..core.pipeline import _LOCALIZED, BackboneResult, build_backbone
from ..core.virtual_graph import VirtualGraph, VirtualLink
from ..cds.verify import check_gateways_are_members
from ..errors import (
    DisconnectedGraphError,
    InvalidParameterError,
    PartitionError,
    RepairError,
    ValidationError,
)
from ..net.graph import Graph
from ..net.oracle import gather_csr_neighbors
from ..net.paths import PathOracle
from ..obs import counter as obs_counter
from ..obs import span
from ..types import NodeId

__all__ = [
    "RepairOutcome",
    "failure_role",
    "repair",
    "degraded_repair",
    "ensure_survivors_connected",
    "clustering_still_valid",
    "delta_path_oracle",
]


@dataclass(frozen=True)
class RepairOutcome:
    """Result of handling one node failure.

    Attributes:
        failed_node: the node that disappeared.
        role: its role at failure time (``member`` / ``gateway`` / ``head``).
        action: what the repair did: ``"none"`` (CDS untouched),
            ``"gateway-reselect"``, ``"recluster"``, ``"partition"``, or
            ``"degraded"`` (:func:`degraded_repair` only: component-local
            backbones on a partitioned survivor graph).
        escalated: True when a cheap fix failed validation and the repair
            fell back to a more global action than §3.3 promises.
        scope_heads: clusterheads whose local state had to change.
        partitioned: the failure disconnected the network (no single
            backbone can span it; caller must handle components).
        backbone: the repaired, verified backbone (None when partitioned
            and not degraded).
        spliced: the accepted backbone reused the old structure instead
            of a pipeline rebuild — the member fast path, or the gateway
            splice that re-derives only the virtual links routed through
            the dead gateway.
        degraded: the backbone is component-local (see
            :func:`degraded_repair`); cross-component flows are
            unroutable and walks on it must be treated as degraded-mode.
        components: the surviving connected components when
            ``partitioned`` (largest first); empty otherwise.
    """

    failed_node: NodeId
    role: str
    action: str
    escalated: bool
    scope_heads: frozenset[NodeId]
    partitioned: bool
    backbone: Optional[BackboneResult]
    spliced: bool = False
    degraded: bool = False
    components: tuple[tuple[int, ...], ...] = ()

    @property
    def locality(self) -> float:
        """Fraction of surviving clusterheads untouched (1.0 = fully local)."""
        if self.backbone is None:
            return 0.0
        total = len(self.backbone.heads)
        if total == 0:
            return 1.0
        return 1.0 - len(self.scope_heads & set(self.backbone.heads)) / total


def failure_role(backbone: BackboneResult, node: NodeId) -> str:
    """Classify ``node`` as ``"head"``, ``"gateway"`` or ``"member"``."""
    if node in set(backbone.heads):
        return "head"
    if node in backbone.gateways:
        return "gateway"
    return "member"


def _excluded_nodes(clustering: Clustering) -> set[NodeId]:
    """Phantom nodes of earlier failures: self-assigned but not heads.

    Repairs can be chained (the returned backbone fed into the next
    :func:`repair` call); dead nodes stay in the graph as isolated,
    self-assigned, non-head vertices, and every later repair must keep
    ignoring them.
    """
    heads = set(clustering.heads)
    return {
        u
        for u in clustering.graph.nodes()
        if clustering.head_of[u] == u and u not in heads
    }


def _strip_nodes(
    clustering: Clustering, graph2: Graph, gone: set[NodeId]
) -> Clustering:
    """Clustering on the post-failure graph with ``gone`` nodes excluded."""
    head_of = list(clustering.head_of)
    for u in gone:
        head_of[u] = u
    heads = tuple(h for h in clustering.heads if h not in gone)
    return Clustering(
        graph=graph2,
        k=clustering.k,
        head_of=tuple(head_of),
        heads=heads,
        rounds=clustering.rounds,
        priority_name=clustering.priority_name,
        membership_name=clustering.membership_name,
    )


def _old_assignment_valid(
    clustering: Clustering, graph2: Graph, gone: set[NodeId]
) -> bool:
    """Do all survivors still sit within k hops of their (surviving) head?

    Checked head-centrically: one k-ball per surviving head (answered by
    the post-failure oracle, whose ball cache is inherited incrementally
    across failures) covers all of that head's members at once, instead of
    one pair query — a full BFS row on the lazy backend — per survivor.
    """
    k = clustering.k
    oracle = graph2.oracle
    # Group survivors by head in one stable-argsort pass over the
    # assignment array (the per-node Python sweep was a fixed per-failure
    # cost at scale), then cover each head's members with one k-ball.
    head_arr = np.asarray(clustering.head_of, dtype=np.int64)
    gone_mask = np.zeros(graph2.n, dtype=bool)
    if gone:
        gone_mask[np.fromiter(gone, dtype=np.intp, count=len(gone))] = True
    survivors = np.flatnonzero(~gone_mask)
    their_heads = head_arr[survivors]
    if gone_mask[their_heads].any():
        return False  # some survivor's head died
    order, uniq, bounds = group_by_assignment(their_heads)
    sorted_members = survivors[order]
    oracle.prepare_balls(uniq.tolist(), k)
    for i, h in enumerate(uniq.tolist()):
        members = sorted_members[bounds[i] : bounds[i + 1]]
        nodes, _ = oracle.ball(h, k)
        pos = np.searchsorted(nodes, members)
        if (pos >= nodes.size).any():
            return False
        if not (nodes[pos] == members).all():
            return False
    return True


def _verify_excluding(
    result: BackboneResult,
    excluded: set[NodeId],
    *,
    per_component: bool = False,
) -> None:
    """Backbone verification that ignores the dead nodes.

    With ``per_component=True`` the CDS-connectivity requirement is
    checked within each graph component instead of globally — the
    service guard's contract, where a disconnected *graph* (an islanded
    arrival, a partition served by degraded routing) is an expected
    environmental condition, while a CDS split inside one component is
    still an engine bug.
    """
    g = result.clustering.graph
    check_gateways_are_members(result)
    _check_links_alive(result)
    if per_component:
        cds = set(result.cds)
        for comp in g.connected_components():
            sub = cds & set(comp)
            if sub and not g.is_connected_subset(sub):
                raise ValidationError(
                    "repaired CDS is not connected within its component"
                )
    elif not g.is_connected_subset(result.cds):
        raise ValidationError("repaired CDS is not connected")
    k = result.clustering.k
    # Union of per-head k-balls (cache-friendly, output-sensitive) instead
    # of a pair query per survivor x head; missing balls batch through the
    # depth-limited multi-source kernel.
    g.oracle.prepare_balls(result.heads, k)
    covered = set(g.nodes_within(result.heads, k))
    for u in g.nodes():
        if u in excluded:
            continue
        if u not in covered:
            raise ValidationError(f"survivor {u} lost k-hop domination")


def _check_links_alive(result: BackboneResult) -> None:
    """Selected links still realized: edges alive, interiors are gateways.

    This is :func:`~repro.cds.verify.check_links_realized` minus the
    shortest-path re-derivation, which node removal makes redundant: the
    link weight equaled the graph distance when the backbone was built or
    last verified (canonical paths are shortest by construction), removal
    can only *increase* distances, and the stored path — whose edges are
    re-checked here — still realizes ``weight`` hops, pinning the new
    distance to exactly ``weight``.  Skipping the re-derivation keeps the
    per-failure cost at O(links · path length) instead of one BFS row per
    link endpoint.
    """
    g = result.clustering.graph
    for a, b in sorted(result.selected_links):
        link = result.virtual_graph.link(a, b)
        for x, y in zip(link.path, link.path[1:]):
            if not g.has_edge(x, y):
                raise ValidationError(
                    f"virtual link {a}-{b} uses non-edge ({x},{y})"
                )
        missing = set(link.interior) - result.gateways
        if missing:
            raise ValidationError(
                f"link {a}-{b} interior nodes {sorted(missing)} are not "
                "gateways"
            )


def _seeded_path_oracle(
    graph2: Graph, backbone: BackboneResult, gone: set[NodeId]
) -> PathOracle:
    """A path oracle for the post-failure graph, pre-seeded with every
    surviving virtual-link path of the old backbone.

    Stored link paths are the canonical head-to-head paths of the graph
    they were built on; a path avoiding every removed node stays
    canonical (removal only shrinks the min-ID predecessor candidate
    sets, never below the surviving choice), so rebuilding the virtual
    graph after a failure re-derives only the links the failure actually
    broke — the dominant per-repair cost at scale was recomputing the BFS
    rows behind all the unaffected links.
    """
    oracle = PathOracle(graph2)
    oracle.seed_paths(
        link.path
        for link in backbone.virtual_graph.links()
        if not gone.intersection(link.path)
    )
    return oracle


def _splice_gateway(
    backbone: BackboneResult,
    surviving: Clustering,
    graph2: Graph,
    gone: set[NodeId],
    node: NodeId,
) -> Optional[BackboneResult]:
    """Gateway death without a rebuild: re-derive only the broken links.

    §3.3 promises that for a gateway failure "only the corresponding
    clusterhead needs to re-run the gateway selection process", yet the
    ladder used to fall back to a full pipeline rebuild.  This splice
    keeps the clustering, the neighbor structure and the selected link
    set, and re-derives canonical paths *only* for the virtual links the
    dead gateway actually sat on.

    The reuse of ``selected_links`` is exact, not heuristic: the link
    pairs come from the unchanged clustering, and every re-derived path
    must realize the **same hop weight** as before — link order keys
    ``(hops, u, v)`` are therefore unchanged, so Mesh/LMST selection over
    the new virtual graph would pick the identical link set (the
    walk-identity test in ``tests/maintenance/test_repair.py`` asserts
    routed walks match the rebuild).  Any weight increase, a head
    appearing in a new interior, or a verification failure returns None
    and the caller falls back to the rebuild path.
    """
    head_set = set(surviving.heads)
    oracle = _seeded_path_oracle(graph2, backbone, gone)
    links: list[VirtualLink] = []
    try:
        for link in backbone.virtual_graph.links():
            # The old backbone was verified after every earlier failure,
            # so the only dead node a stored path can contain is `node`.
            if node not in link.path:
                links.append(link)
                continue
            path = oracle.path(link.u, link.v)
            if len(path) - 1 != link.weight:
                return None  # weight grew: selection could differ
            if any(w in head_set for w in path[1:-1]):
                return None
            links.append(VirtualLink(link.u, link.v, path))
        vgraph = VirtualGraph(surviving.heads, links)
        result = replace(
            backbone,
            clustering=surviving,
            virtual_graph=vgraph,
            gateways=vgraph.gateways_for(backbone.selected_links),
        )
        return _verify_and_accept(result, gone)
    except (DisconnectedGraphError, ValidationError):
        return None


def ensure_survivors_connected(graph: Graph, gone: set[NodeId]) -> None:
    """Raise :class:`PartitionError` unless survivors form one component.

    The typed boundary between "expected environmental condition" and
    "bug": fault-tolerant loops (chaos, degraded mobility) call this to
    turn a structural partition into a catchable, component-carrying
    exception instead of a downstream ValidationError.
    """
    if not _survivors_connected(graph, gone):
        # The component payload needs the dead nodes actually isolated —
        # on the caller's graph they may still be wired in, which would
        # merge components straight through the failure.
        reduced = graph.without_nodes(sorted(gone)) if gone else graph
        comps = _surviving_components(reduced, gone)
        raise PartitionError(
            f"survivor graph has {len(comps)} components "
            f"(largest {len(comps[0]) if comps else 0} nodes)",
            components=comps,
        )


def _surviving_components(
    graph: Graph, gone: set[NodeId]
) -> tuple[tuple[int, ...], ...]:
    """Connected components of the survivors, largest first.

    ``graph`` must already have the ``gone`` nodes isolated (their
    singletons are dropped here); ties keep discovery order, so the
    result is deterministic.
    """
    comps = [
        c for c in graph.connected_components() if not set(c) <= gone
    ]
    comps.sort(key=len, reverse=True)
    return tuple(comps)


def clustering_still_valid(
    clustering: Clustering, graph2: Graph, exclude: set[NodeId] = frozenset()
) -> bool:
    """Does ``clustering`` remain a k-hop clustering on ``graph2``?

    The §3.3 question generalized to *any* structural change: after an
    edge delta (mobility) or a removal, do all non-``exclude`` nodes
    still sit within ``k`` hops of their assigned (surviving) head?
    Checked head-centrically via one k-ball per head on ``graph2``'s
    oracle — whose ball cache inherits across deltas, so a snapshot that
    moved nothing near a cluster re-validates it from cache.

    This is the cheap gate a movement-sensitive maintenance policy runs
    before deciding whether a snapshot needs re-clustering at all; the
    stability simulation reports how often it passes.
    """
    return _old_assignment_valid(clustering, graph2, set(exclude))


def delta_path_oracle(
    graph2: Graph, old_oracle: PathOracle, touched
) -> PathOracle:
    """A path oracle for the post-delta graph, pre-seeded with every
    canonical path that provably survived the edge delta.

    The edge-delta analogue of :func:`_seeded_path_oracle`: survival is
    decided by :meth:`~repro.net.paths.PathOracle.inherit_edge_delta`'s
    valid-prefix rule (membership of the old path alone is not enough
    once edges can *appear*), so rebuilding the virtual graph after a
    snapshot re-derives only the links the motion actually disturbed.
    """
    oracle = PathOracle(graph2)
    oracle.inherit_edge_delta(old_oracle, touched)
    return oracle


def _verify_and_accept(
    result: BackboneResult, gone: set[NodeId]
) -> BackboneResult:
    """Run the excluded-node verification battery and return ``result``."""
    _verify_excluding(result, gone)
    return result


def _survivors_connected(graph2: Graph, gone: set[NodeId]) -> bool:
    """Whether the nodes outside ``gone`` form one connected component.

    A masked level-synchronous BFS over the CSR adjacency arrays: ``gone``
    nodes start out marked as seen so they neither enter a frontier nor
    count toward the reachable total, and each level is one vectorized
    gather over the frontier's CSR ranges — replacing the Python
    node-at-a-time sweep that dominated per-failure cost at scale.
    """
    n = graph2.n
    seen = np.zeros(n, dtype=bool)
    if gone:
        seen[np.fromiter(gone, dtype=np.intp, count=len(gone))] = True
    survivors = int(n - seen.sum())
    if survivors <= 1:
        return True
    indptr, indices = graph2.csr_adjacency
    root = int(np.flatnonzero(~seen)[0])
    seen[root] = True
    frontier = np.asarray([root], dtype=np.int64)
    reached = 1
    while frontier.size:
        nbrs, _ = gather_csr_neighbors(indptr, indices, frontier)
        if nbrs.size == 0:
            break
        nbrs = nbrs[~seen[nbrs]]
        if nbrs.size == 0:
            break
        frontier = np.unique(nbrs)
        seen[frontier] = True
        reached += frontier.size
    return reached == survivors


def repair(backbone: BackboneResult, node: NodeId) -> RepairOutcome:
    """Handle the disappearance of ``node`` per the §3.3 ladder.

    Each call is traced as a ``repair`` span and tallies the ladder
    outcome into the ``repair.actions.*`` / ``repair.spliced`` counters
    when the observability layer is enabled.

    Raises:
        InvalidParameterError: if ``node`` is not a node of the graph.
    """
    with span("repair", node=int(node)):
        outcome = _repair_ladder(backbone, node)
        obs_counter(f"repair.actions.{outcome.action}").add()
        if outcome.spliced:
            obs_counter("repair.spliced").add()
    return outcome


def _repair_ladder(backbone: BackboneResult, node: NodeId) -> RepairOutcome:
    """The untraced §3.3 escalation ladder behind :func:`repair`."""
    clustering = backbone.clustering
    graph = clustering.graph
    if not (0 <= node < graph.n):
        raise InvalidParameterError(f"node {node} out of range")
    role = failure_role(backbone, node)
    gone = _excluded_nodes(clustering) | {node}

    # Partition check runs on the *original* graph (the traversal already
    # skips ``gone`` nodes), so the reduced graph — pointless for this
    # outcome — is only constructed once a repair is actually attempted.
    if not _survivors_connected(graph, gone):
        return RepairOutcome(
            failed_node=node,
            role=role,
            action="partition",
            escalated=False,
            scope_heads=frozenset(backbone.heads),
            partitioned=True,
            backbone=None,
        )
    # Single-node fast path: patches CSR arrays and inherits the parent
    # oracle's still-valid cached rows/balls.
    graph2 = graph.without_nodes([node])

    # --- rungs 1 & 2: keep the clustering, maybe re-run gateways -------- #
    if role in ("member", "gateway") and _old_assignment_valid(
        clustering, graph2, gone
    ):
        surviving = _strip_nodes(clustering, graph2, gone)
        result = None
        spliced = False
        if role == "member":
            # §3.3: "nothing needs to be done with respect to the existing
            # CDS".  A failed member is neither a head nor a gateway, so no
            # selected virtual link loses a path node — the old backbone is
            # *spliced* onto the post-failure clustering unchanged and then
            # re-verified, instead of being rebuilt from scratch.
            try:
                result = _verify_and_accept(
                    replace(backbone, clustering=surviving), gone
                )
                spliced = True
            except ValidationError:
                result = None
        if result is None and role == "gateway":
            # §3.3's local fix, structurally: keep clustering, neighbor
            # structure and selected links; re-derive only the virtual
            # links routed through the dead gateway.
            result = _splice_gateway(backbone, surviving, graph2, gone, node)
            spliced = result is not None
        if result is None:
            try:
                result = build_backbone(
                    surviving,
                    backbone.algorithm,
                    oracle=_seeded_path_oracle(graph2, backbone, gone),
                )
                _verify_excluding(result, gone)
            except ValidationError:
                result = None
        if result is not None:
            if role == "member":
                action, scope = "none", frozenset()
            else:
                affected = {
                    h
                    for a, b in backbone.selected_links
                    if node in backbone.virtual_graph.link(a, b).interior
                    for h in (a, b)
                }
                action, scope = "gateway-reselect", frozenset(affected)
            return RepairOutcome(
                failed_node=node,
                role=role,
                action=action,
                escalated=False,
                scope_heads=scope,
                partitioned=False,
                backbone=result,
                spliced=spliced,
            )

    # --- rung 3: clusterhead election re-runs --------------------------- #
    reclustered = khop_cluster(
        graph2,
        clustering.k,
        membership=clustering.membership_name,
        require_connected=False,
    )
    # Isolated dead nodes elect themselves into phantom singleton
    # clusters; strip them before building the backbone.
    stripped = _strip_nodes(reclustered, graph2, gone)
    # The final rung must absorb any failure that leaves the survivors
    # connected; a verification failure here is a defect in the repair
    # machinery, not an environmental condition — surface it as the
    # typed bug class so callers can tell it apart from a partition.
    try:
        result = build_backbone(
            stripped,
            backbone.algorithm,
            oracle=_seeded_path_oracle(graph2, backbone, gone),
        )
        _verify_excluding(result, gone)
    except RepairError:
        raise
    except ValidationError as exc:
        raise RepairError(
            f"re-clustering rung produced an invalid backbone after "
            f"removing node {node} from a connected survivor graph: {exc}"
        ) from exc
    return RepairOutcome(
        failed_node=node,
        role=role,
        action="recluster",
        escalated=role != "head",
        scope_heads=frozenset(backbone.heads) | frozenset(result.heads),
        partitioned=False,
        backbone=result,
    )


def _verify_degraded(
    result: BackboneResult,
    excluded: set[NodeId],
    components: tuple[tuple[int, ...], ...],
) -> None:
    """The verification battery for a component-local (degraded) backbone.

    Same checks as :func:`_verify_excluding` except connectivity, which a
    partitioned graph can only satisfy *per component*: the CDS nodes
    inside each surviving component must form a connected subgraph, and
    every survivor must still be k-hop dominated by some head (heads are
    per-component, so domination never crosses a partition).
    """
    g = result.clustering.graph
    check_gateways_are_members(result)
    _check_links_alive(result)
    cds = set(result.cds)
    for comp in components:
        if not g.is_connected_subset(cds & set(comp)):
            raise ValidationError(
                f"degraded CDS is not connected inside component of "
                f"{len(comp)} survivors"
            )
    k = result.clustering.k
    g.oracle.prepare_balls(result.heads, k)
    covered = set(g.nodes_within(result.heads, k))
    for u in g.nodes():
        if u in excluded:
            continue
        if u not in covered:
            raise ValidationError(f"survivor {u} lost k-hop domination")


def degraded_repair(backbone: BackboneResult, node: NodeId) -> RepairOutcome:
    """The §3.3 ladder with a graceful floor under partition.

    Runs :func:`repair`; when the failure partitioned the survivor
    graph — where the plain ladder gives up with ``backbone=None`` —
    falls back to *component-local* operation instead: the survivors are
    re-clustered (``require_connected=False``), a backbone is built with
    the same localized algorithm (neighbor rules only pair heads within
    2k+1 hops, so virtual links never cross a partition), and the result
    is verified per component.  The returned outcome has
    ``action="degraded"``, ``degraded=True``, the surviving components,
    and a backbone on which same-component flows remain routable —
    cross-component flows must be filtered out by the caller (e.g. via
    the ``routable`` mask of :func:`repro.faults.delivery.deliver`).

    Raises:
        InvalidParameterError: for ``G-MST`` backbones — the metric
            closure needs all-pairs paths, which a partitioned graph
            cannot provide; degraded mode is restricted to the localized
            algorithms.
        RepairError: when the component-local pipeline itself produces an
            invalid backbone (a bug, not an environmental condition).
    """
    out = repair(backbone, node)
    if not out.partitioned:
        return out
    if backbone.algorithm not in _LOCALIZED:
        raise InvalidParameterError(
            f"degraded repair needs a localized algorithm, got "
            f"{backbone.algorithm!r} (known: {sorted(_LOCALIZED)})"
        )
    clustering = backbone.clustering
    graph = clustering.graph
    gone = _excluded_nodes(clustering) | {node}
    graph2 = graph.without_nodes([node])
    components = _surviving_components(graph2, gone)
    reclustered = khop_cluster(
        graph2,
        clustering.k,
        membership=clustering.membership_name,
        require_connected=False,
    )
    stripped = _strip_nodes(reclustered, graph2, gone)
    try:
        result = build_backbone(
            stripped,
            backbone.algorithm,
            oracle=_seeded_path_oracle(graph2, backbone, gone),
        )
        _verify_degraded(result, gone, components)
    except ValidationError as exc:
        raise RepairError(
            f"degraded repair produced an invalid component-local "
            f"backbone after removing node {node}: {exc}"
        ) from exc
    return RepairOutcome(
        failed_node=node,
        role=out.role,
        action="degraded",
        escalated=True,
        scope_heads=frozenset(backbone.heads) | frozenset(result.heads),
        partitioned=True,
        backbone=result,
        degraded=True,
        components=components,
    )
