"""Churn simulation: a stream of node failures with §3.3 repairs applied.

Drives the repair ladder with a random failure sequence and aggregates
what the paper argues qualitatively: most failures touch nothing (members)
or only the incident heads (gateways), and full re-elections stay rare
because clusterheads are few.

Failures are applied cumulatively — each repair's backbone is the input to
the next failure — so the report reflects a degrading network, not
independent single-failure experiments (those live in the maintenance
benchmark).

:func:`simulate_churn` rides the incremental machinery end to end: each
removal takes :meth:`Graph.without_nodes`'s single-node fast path (CSR
patch + oracle cache inheritance), member failures splice the existing
backbone instead of rebuilding it, and validation runs on per-head balls
that mostly survive from the previous failure's cache.
:func:`simulate_churn_rebuild` is the from-scratch baseline — rebuild
graph, clustering, backbone and oracle on every failure — kept as the
yardstick the churn benchmark measures the incremental path against.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..core.clustering import Clustering, khop_cluster
from ..core.pipeline import BackboneResult, build_backbone
from ..errors import InvalidParameterError
from ..net.graph import Graph
from .repair import RepairOutcome, failure_role, repair

__all__ = ["ChurnReport", "simulate_churn", "simulate_churn_rebuild"]


@dataclass
class ChurnReport:
    """Aggregate outcome of a cumulative failure sequence.

    Attributes:
        outcomes: per-failure repair outcomes, in order.
        actions: histogram of repair actions.
        roles: histogram of failed-node roles.
        survivors_backbone: the final backbone (None if the network
            partitioned and the simulation stopped).
        stopped_at: index of the failure that partitioned the network,
            or None if all failures were absorbed.
    """

    outcomes: list[RepairOutcome] = field(default_factory=list)
    actions: Counter = field(default_factory=Counter)
    roles: Counter = field(default_factory=Counter)
    survivors_backbone: Optional[BackboneResult] = None
    stopped_at: Optional[int] = None

    @property
    def mean_locality(self) -> float:
        """Mean repair locality over non-partition outcomes (1.0 = local)."""
        vals = [o.locality for o in self.outcomes if not o.partitioned]
        return float(np.mean(vals)) if vals else 0.0

    @property
    def recluster_rate(self) -> float:
        """Fraction of failures that forced a clusterhead re-election."""
        if not self.outcomes:
            return 0.0
        return self.actions["recluster"] / len(self.outcomes)


def simulate_churn(
    graph: Graph,
    k: int,
    *,
    failures: int,
    seed: int,
    algorithm: str = "AC-LMST",
) -> ChurnReport:
    """Kill ``failures`` random distinct nodes one at a time, repairing each.

    Stops early (recording ``stopped_at``) if a failure partitions the
    surviving network — after that no single backbone can exist.

    Args:
        graph: connected network.
        k: cluster radius.
        failures: how many nodes to remove (< n).
        seed: RNG seed for the failure order.
        algorithm: backbone pipeline to maintain.
    """
    if failures < 1 or failures >= graph.n:
        raise InvalidParameterError(
            f"failures must be in 1..{graph.n - 1}, got {failures}"
        )
    rng = np.random.default_rng(seed)
    order = rng.permutation(graph.n)[:failures]
    backbone = build_backbone(khop_cluster(graph, k), algorithm)
    report = ChurnReport()
    for i, node in enumerate(order.tolist()):
        out = repair(backbone, int(node))
        report.outcomes.append(out)
        report.actions[out.action] += 1
        report.roles[out.role] += 1
        if out.partitioned:
            report.stopped_at = i
            return report
        backbone = out.backbone
    report.survivors_backbone = backbone
    return report


def simulate_churn_rebuild(
    graph: Graph,
    k: int,
    *,
    failures: int,
    seed: int,
    algorithm: str = "AC-LMST",
) -> ChurnReport:
    """From-scratch churn baseline: full rebuild on every failure.

    Applies the same failure order as :func:`simulate_churn` (same seed,
    same RNG draw) but ignores the §3.3 repair ladder entirely: each
    failure constructs the reduced graph through the generic multi-node
    path (cold CSR, cold oracle), re-runs clusterhead election, and
    rebuilds the backbone — the seed implementation's behavior and the
    baseline the churn benchmark measures the incremental path against.

    Every outcome is recorded as action ``"recluster"``; partition
    handling matches :func:`simulate_churn`.
    """
    if failures < 1 or failures >= graph.n:
        raise InvalidParameterError(
            f"failures must be in 1..{graph.n - 1}, got {failures}"
        )
    rng = np.random.default_rng(seed)
    order = rng.permutation(graph.n)[:failures]
    backbone = build_backbone(khop_cluster(graph, k), algorithm)
    report = ChurnReport()
    dead: set[int] = set()
    current = graph
    for i, node in enumerate(order.tolist()):
        node = int(node)
        dead.add(node)
        role = failure_role(backbone, node)
        report.roles[role] += 1
        # Force the generic (non-incremental) removal path: rebuild the
        # reduced graph from the full edge list with nothing carried over.
        edges = [e for e in current.edges if node not in e]
        reduced = Graph(current.n, edges)
        reduced._backend = current._backend
        survivors = [u for u in reduced.nodes() if u not in dead]
        if survivors and not reduced.is_connected_subset(survivors):
            report.outcomes.append(
                RepairOutcome(
                    failed_node=node,
                    role=role,
                    action="partition",
                    escalated=False,
                    scope_heads=frozenset(backbone.heads),
                    partitioned=True,
                    backbone=None,
                )
            )
            report.actions["partition"] += 1
            report.stopped_at = i
            return report
        reclustered = khop_cluster(reduced, k, require_connected=False)
        # Dead nodes elect themselves into phantom singleton clusters;
        # drop them from the head list (the _strip_nodes convention).
        stripped = Clustering(
            graph=reduced,
            k=k,
            head_of=reclustered.head_of,
            heads=tuple(h for h in reclustered.heads if h not in dead),
            rounds=reclustered.rounds,
            priority_name=reclustered.priority_name,
            membership_name=reclustered.membership_name,
        )
        backbone = build_backbone(stripped, algorithm)
        out = RepairOutcome(
            failed_node=node,
            role=role,
            action="recluster",
            escalated=False,
            scope_heads=frozenset(backbone.heads),
            partitioned=False,
            backbone=backbone,
        )
        report.outcomes.append(out)
        report.actions["recluster"] += 1
        current = reduced
    report.survivors_backbone = backbone
    return report
