"""§3.3 dynamics: failure repair, churn simulation, clusterhead rotation."""

from .churn import ChurnReport, simulate_churn
from .repair import RepairOutcome, failure_role, repair
from .rotation import RotationEpoch, RotationReport, simulate_rotation
from .stability import StabilityReport, StabilityStep, simulate_stability

__all__ = [
    "RepairOutcome",
    "failure_role",
    "repair",
    "ChurnReport",
    "simulate_churn",
    "RotationEpoch",
    "RotationReport",
    "simulate_rotation",
    "StabilityReport",
    "StabilityStep",
    "simulate_stability",
]
