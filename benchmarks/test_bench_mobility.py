"""Mobility-coupled traffic benchmark: edge-delta engine vs per-snapshot rebuild.

The tentpole claim this benchmark gates: driving the traffic workload
over RandomWaypoint unit-disk snapshots with **edge-delta maintenance**
(:meth:`Graph.with_edge_delta` + the inheritance family behind
``engine="delta"``) produces **walk-identical** results to rebuilding
graph, oracle, clustering, backbone and router from scratch on every
snapshot — and does so **>= 3x faster** at the acceptance grid point
N=2000 over 20 snapshots (high-frequency sampling: successive snapshots
differ by a handful of edges, the regime §3.3 maintenance targets).

The full grid point runs when ``REPRO_BENCH_FULL=1`` (``make
bench-mobility``); the default tier-1 pass uses a reduced instance with a
correspondingly reduced speedup gate so the CI smoke job stays fast.
Speedup assertions are enforced under ``REPRO_BENCH_STRICT``; deliberate
bench runs (strict/full/persist env flags) record the measurement to
``BENCH_mobility.json`` at the repo root.
"""

import math
import os
import time

from conftest import persist_bench

from repro.net.topology import random_topology
from repro.traffic.mobile import simulate_mobile_traffic
from repro.traffic.workloads import uniform_pairs

#: (n, snapshots, flows, min_speedup) — acceptance and reduced cases.
FULL_CASE = (2000, 20, 1500, 3.0)
QUICK_CASE = (600, 6, 600, 1.5)

#: Average degree (same regime as the churn benchmark).
MOB_DEGREE = 10.0

#: Cluster radius.
MOB_K = 2

#: Random-waypoint speed range in area units per step — high-frequency
#: sampling of pedestrian-scale motion, so successive unit-disk snapshots
#: differ by a few edges (the mobility docstring's stated regime).
MOB_SPEED = (0.001, 0.004)
QUICK_SPEED = (0.002, 0.008)


def _case():
    if os.environ.get("REPRO_BENCH_FULL"):
        return FULL_CASE + (MOB_SPEED,)
    return QUICK_CASE + (QUICK_SPEED,)


def test_bench_mobility_delta_vs_rebuild(benchmark):
    n, snapshots, flows, min_speedup, speed = _case()
    topo = random_topology(n, degree=MOB_DEGREE, seed=17)
    topo.graph.use_distance_backend("lazy")
    wl = uniform_pairs(n, flows, seed=23)

    # CPU time so the strict gate is robust to CI scheduling noise.
    t0 = time.process_time()
    rebuild = simulate_mobile_traffic(
        topo, MOB_K, wl, snapshots=snapshots, speed=speed, seed=29,
        engine="rebuild", collect_walks=True,
    )
    t1 = time.process_time()
    delta = benchmark.pedantic(
        simulate_mobile_traffic,
        args=(topo, MOB_K, wl),
        kwargs=dict(
            snapshots=snapshots, speed=speed, seed=29,
            engine="delta", collect_walks=True,
        ),
        rounds=1,
        iterations=1,
    )
    t2 = time.process_time()
    rebuild_s, delta_s = t1 - t0, t2 - t1

    # The acceptance contract: edge-delta maintenance is *exact* — every
    # epoch's routed walks are identical to the from-scratch rebuild's.
    assert delta.walks == rebuild.walks
    assert len(delta.epochs) == len(rebuild.epochs) == snapshots + 1
    for a, b in zip(delta.epochs, rebuild.epochs):
        assert a.connected == b.connected
        if a.connected:
            assert math.isclose(a.mean_stretch, b.mean_stretch)
            assert a.max_node_load == b.max_node_load
    # The inheritance actually fired (the speedup is not an accident).
    assert delta.rows_inherited > 0
    assert delta.paths_inherited > 0

    speedup = rebuild_s / max(delta_s, 1e-9)
    if os.environ.get("REPRO_BENCH_STRICT"):
        assert speedup >= min_speedup, (
            f"edge-delta mobility ({delta_s:.2f}s) should be >= "
            f"{min_speedup}x faster than per-snapshot rebuild "
            f"({rebuild_s:.2f}s)"
        )
    mean_delta_edges = sum(
        e.edges_added + e.edges_removed for e in delta.epochs
    ) / snapshots
    record = dict(
        n=n,
        snapshots=snapshots,
        flows=flows,
        k=MOB_K,
        speed=list(speed),
        delta_seconds=round(delta_s, 3),
        rebuild_seconds=round(rebuild_s, 3),
        speedup=round(speedup, 2),
        mean_delta_edges=round(mean_delta_edges, 1),
        rows_inherited=delta.rows_inherited,
        rows_partial_inherited=delta.rows_partial_inherited,
        paths_inherited=delta.paths_inherited,
        router_rebuilds_avoided=delta.router_rebuilds_avoided,
        mean_stretch=round(delta.mean("mean_stretch"), 3),
        mean_head_churn=round(delta.mean("head_churn"), 3),
    )
    benchmark.extra_info.update(record)
    persist_bench("BENCH_mobility.json", {"benchmark": "mobility", **record})
