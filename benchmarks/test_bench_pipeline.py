"""Construction-pipeline benchmark: vectorized build path at N=10^4.

The tentpole claims this benchmark measures:

* **batched clustering** — ``khop_cluster``'s CSR key-propagation engine
  runs **>= 5x** faster than the scalar per-node reference at N=5000
  (>= 3x at the reduced CI case), producing an *identical* ``head_of``;
* **full-pipeline scale** — the whole construction path (batched
  clustering -> CDS backbone -> vectorized pruned-landmark labels ->
  10^3 batch-routed flows) completes at **N=10^4** on the landmark
  backend, the scale the ROADMAP calls for.

The sweep covers N=2000 -> 10000 under ``REPRO_BENCH_FULL=1`` (``make
bench-pipeline``); the default/CI pass runs a reduced instance.  Strict
speedup margins are enforced under ``REPRO_BENCH_STRICT``; deliberate
runs persist per-stage timings (cluster / cds / labels / router) to
``BENCH_pipeline.json`` and print a one-line table per N for trajectory
tracking.  Per-stage timing comes from the ``repro.obs`` span tree — the
same instrumentation a ``--trace`` run exports — instead of hand-rolled
clock reads.
"""

import os
from contextlib import contextmanager

from conftest import persist_bench

from repro import obs
from repro.core.clustering import khop_cluster
from repro.core.pipeline import build_backbone
from repro.net.graph import Graph
from repro.net.topology import random_topology
from repro.traffic.router import BatchRouter
from repro.traffic.workloads import uniform_pairs

#: Sweep sizes, the scalar-vs-batched comparison size, and the strict gate.
FULL_CASE = dict(ns=(2000, 5000, 10000), compare_n=5000, flows=1000, gate=5.0)
QUICK_CASE = dict(ns=(2000,), compare_n=2000, flows=500, gate=3.0)

#: Average degree (the regime shared with the scaling/churn/traffic benches).
PIPELINE_DEGREE = 12.0

#: Cluster radius of the built backbones.
PIPELINE_K = 2


def _case():
    return FULL_CASE if os.environ.get("REPRO_BENCH_FULL") else QUICK_CASE


@contextmanager
def _tracing():
    """Obs layer on with clean state for the block, off (and clean) after."""
    obs.set_enabled(True)
    obs.reset()
    obs.reset_tracer()
    try:
        yield
    finally:
        obs.reset()
        obs.reset_tracer()
        obs.set_enabled(False)


def _build_stage_timings(n: int, flows: int) -> dict:
    """One full construction at size ``n``; returns per-stage seconds.

    The engine's own ``cluster``/``cds``/``labels`` spans supply the
    stage breakdown; only the routing stage (spanned in the traffic
    report driver, not the router itself) needs a local span.
    """
    topo = random_topology(n, degree=PIPELINE_DEGREE, seed=41)
    g = topo.graph.use_distance_backend("landmark")
    with _tracing():
        with obs.span("pipeline", n=n):
            clustering = khop_cluster(g, PIPELINE_K)
            backbone = build_backbone(clustering, "AC-LMST")
            # forces the vectorized pruned-landmark construction
            g.oracle.label(0)
            with obs.span("router", flows=flows):
                routed = BatchRouter(backbone).route_flows(
                    uniform_pairs(n, flows, seed=43), with_shortest=True
                )
        (root,) = obs.take_finished()
    stage = {sp.name: sp.duration for sp in root.children}
    assert routed.num_flows == flows
    assert (routed.stretches() >= 1.0).all()
    return dict(
        n=n,
        k=PIPELINE_K,
        flows=flows,
        heads=len(backbone.heads),
        cds_size=backbone.cds_size,
        label_entries=g.oracle.stats().label_entries,
        cluster_seconds=round(stage["cluster"], 3),
        cds_seconds=round(stage["cds"], 3),
        labels_seconds=round(stage["labels"], 3),
        router_seconds=round(stage["router"], 3),
        mean_stretch=round(float(routed.stretches().mean()), 3),
    )


def test_bench_pipeline_clustering_batched_vs_scalar(benchmark):
    case = _case()
    n = case["compare_n"]
    topo = random_topology(n, degree=PIPELINE_DEGREE, seed=41)
    g = topo.graph

    batched = benchmark.pedantic(
        khop_cluster,
        args=(g, PIPELINE_K),
        kwargs=dict(engine="batched"),
        rounds=1,
        iterations=1,
    )
    with _tracing():
        with obs.span("compare", engine="batched") as sp_batched:
            khop_cluster(g, PIPELINE_K, engine="batched")
        # Scalar runs on a fresh graph so its oracle warm-up is counted,
        # the same cold start the batched engine just paid.
        g2 = Graph(g.n, g.edges)
        with obs.span("compare", engine="scalar") as sp_scalar:
            scalar = khop_cluster(g2, PIPELINE_K, engine="scalar")
        batched_s, scalar_s = sp_batched.duration, sp_scalar.duration

    assert batched.head_of == scalar.head_of  # identical clusterings
    assert batched.heads == scalar.heads

    speedup = scalar_s / max(batched_s, 1e-9)
    if os.environ.get("REPRO_BENCH_STRICT"):
        assert speedup >= case["gate"], (
            f"batched clustering ({batched_s:.3f}s) should be >= "
            f"{case['gate']}x faster than the scalar engine "
            f"({scalar_s:.3f}s) at N={n}"
        )
    record = dict(
        n=n,
        k=PIPELINE_K,
        batched_seconds=round(batched_s, 3),
        scalar_seconds=round(scalar_s, 3),
        speedup=round(speedup, 1),
        heads=len(batched.heads),
        rounds=batched.rounds,
    )
    benchmark.extra_info.update(record)
    persist_bench(
        "BENCH_pipeline.json", {"benchmark": "clustering_batched", **record}
    )


def test_bench_pipeline_full_construction(benchmark):
    """cluster -> CDS -> landmark labels -> routed flows, N up to 10^4."""
    case = _case()
    ns = case["ns"]

    def sweep():
        return [_build_stage_timings(n, case["flows"]) for n in ns]

    records = benchmark.pedantic(sweep, rounds=1, iterations=1)
    header = (
        f"{'N':>6} {'cluster':>9} {'cds':>9} {'labels':>9} {'router':>9}"
    )
    print("\n" + header)
    for rec in records:
        print(
            f"{rec['n']:>6} {rec['cluster_seconds']:>8.2f}s "
            f"{rec['cds_seconds']:>8.2f}s {rec['labels_seconds']:>8.2f}s "
            f"{rec['router_seconds']:>8.2f}s"
        )
        benchmark.extra_info[f"n{rec['n']}"] = rec
        persist_bench(
            "BENCH_pipeline.json", {"benchmark": "full_pipeline", **rec}
        )
    # The acceptance scale: the largest sweep point built a clustered,
    # labeled, routed network end to end.
    assert records[-1]["n"] == ns[-1]
    assert records[-1]["cds_size"] > 0
    assert records[-1]["label_entries"] > 0
