"""Service-growth benchmark: incremental admission vs rebuild-per-join.

The tentpole claim this benchmark measures: the long-lived engine grows
a network by an order of magnitude **under continuous traffic** without
ever re-running the global clustering algorithm — every arrival is
admitted through :func:`~repro.core.clustering.admit_nodes` plus the
member-join backbone fast path (or a declared-head backbone-stage
rebuild), with oracle/path/router caches inherited.  Against the naive
alternative — rebuild ``khop_cluster`` + ``build_backbone`` from scratch
on every arrival (the seed behavior for any topology change) — the
incremental service must be **>= 5x** faster.

The acceptance grid point (``REPRO_BENCH_FULL=1`` / ``make
bench-service``) grows 10^3 -> 10^4 nodes; the default tier-1 pass uses
a reduced instance so the gate stays fast.  The rebuild baseline is
measured on evenly spaced snapshots of the same growth trajectory and
integrated piecewise (rebuilding at every single arrival would take
hours at the full point — that is the point).  Deliberate bench runs
(strict/full/persist env flags) record to ``BENCH_service.json``.
"""

import os
import time

import numpy as np
from conftest import persist_bench

from repro.core.clustering import khop_cluster
from repro.core.pipeline import build_backbone
from repro.net.graph import Graph
from repro.service.engine import ServiceConfig, ServiceEngine
from repro.service.events import ServiceEvent

#: (initial n, final n) — acceptance grid point and the reduced tier-1 one.
FULL_CASE = (1_000, 10_000)
QUICK_CASE = (150, 400)

#: Average degree of the initial deployment.
SERVICE_DEGREE = 8.0

#: Cluster radius.
SERVICE_K = 2

#: A flow batch is injected every this many arrivals (continuous traffic).
FLOW_EVERY = 20

#: Flows per injected batch.
FLOWS_PER_BATCH = 25

#: Rebuild-baseline sample count along the growth trajectory.
REBUILD_SAMPLES = 6


def _case():
    return FULL_CASE if os.environ.get("REPRO_BENCH_FULL") else QUICK_CASE


def _growth_schedule(config, n_final, seed):
    """Joins to ``n_final`` at seeded uniform positions, flows interleaved."""
    rng = np.random.default_rng(seed)
    w, h = 100.0, 100.0
    events = []
    for i in range(n_final - config.n):
        pos = rng.uniform(0.0, 1.0, size=2) * (w, h)
        events.append(
            ServiceEvent(
                seq=0, kind="join", position=(float(pos[0]), float(pos[1]))
            )
        )
        if (i + 1) % FLOW_EVERY == 0:
            events.append(
                ServiceEvent(seq=0, kind="flow", flows=FLOWS_PER_BATCH)
            )
    return events


def test_bench_service_growth_vs_rebuild_per_join(benchmark):
    n0, n_final = _case()
    joins = n_final - n0
    config = ServiceConfig(
        n=n0,
        degree=SERVICE_DEGREE,
        k=SERVICE_K,
        seed=41,
        checkpoint_every=0,
        guard_every=0,  # guards are exercised by tier-1; this measures growth
    )
    schedule = _growth_schedule(config, n_final, seed=43)
    engine = ServiceEngine(config)

    def grow():
        engine.apply_all(schedule)
        return engine

    # CPU time so the strict >= 5x gate is robust to CI scheduling noise.
    t0 = time.process_time()
    benchmark.pedantic(grow, rounds=1, iterations=1)
    t1 = time.process_time()
    incremental_s = t1 - t0

    # The growth contract: every arrival admitted, traffic served, and
    # *zero* from-scratch clustering re-runs along the way.
    assert engine.graph.n == n_final
    assert engine.counts["khop_reruns"] == 0
    assert engine.counts["rebuild_fallbacks"] == 0
    assert engine.counts["joins_admitted"] + engine.counts["heads_declared"] == joins
    assert engine.counts["flows_routed"] > 0
    assert all(h["flows"] > 0 for h in engine.history)

    # Rebuild-per-join baseline, integrated over sampled snapshots: replay
    # the same trajectory, and at evenly spaced sizes measure a full
    # khop_cluster + build_backbone, charging that cost to every join in
    # the surrounding stride.
    replay = ServiceEngine(config)
    stride = max(1, joins // REBUILD_SAMPLES)
    rebuild_s = 0.0
    sampled = 0
    applied_joins = 0
    for ev in schedule:
        replay.apply(ev)
        if ev.kind != "join":
            continue
        applied_joins += 1
        if applied_joins % stride == 0 and sampled < REBUILD_SAMPLES:
            g = Graph(replay.graph.n, replay.graph.edges)
            r0 = time.process_time()
            c = khop_cluster(g, SERVICE_K, engine="batched")
            build_backbone(c, config.algorithm)
            rebuild_s += (time.process_time() - r0) * stride
            sampled += 1
    rebuild_s *= joins / (sampled * stride)

    speedup = rebuild_s / max(incremental_s, 1e-9)
    if os.environ.get("REPRO_BENCH_STRICT"):
        assert speedup >= 5.0, (
            f"incremental growth ({incremental_s:.2f}s) should be >= 5x "
            f"faster than rebuild-per-join (est. {rebuild_s:.2f}s)"
        )
    record = dict(
        n_initial=n0,
        n_final=n_final,
        joins=joins,
        k=SERVICE_K,
        incremental_seconds=round(incremental_s, 3),
        rebuild_per_join_seconds=round(rebuild_s, 3),
        speedup=round(speedup, 1),
        joins_admitted=int(engine.counts["joins_admitted"]),
        heads_declared=int(engine.counts["heads_declared"]),
        flows_routed=int(engine.counts["flows_routed"]),
        mean_delivered=round(
            float(np.mean([h["delivered"] for h in engine.history])), 4
        ),
    )
    benchmark.extra_info.update(record)
    persist_bench("BENCH_service.json", {"benchmark": "service_growth", **record})


def test_bench_service_checkpoint_cost(benchmark, tmp_path):
    """Durability overhead: snapshot latency and size at the grown scale."""
    n0, n_final = _case()
    # Durability cost is about state size, not growth history: grow a
    # fraction of the full trajectory, then measure one snapshot.
    target = n0 + max(50, (n_final - n0) // 10)
    config = ServiceConfig(
        n=n0, degree=SERVICE_DEGREE, k=SERVICE_K, seed=47,
        checkpoint_every=0, guard_every=0,
    )
    engine = ServiceEngine(config, tmp_path)
    engine.apply_all(_growth_schedule(config, target, seed=53))

    t0 = time.process_time()
    path = benchmark.pedantic(engine.checkpoint, rounds=1, iterations=1)
    latency_s = time.process_time() - t0
    nbytes = path.stat().st_size

    from repro.service.checkpoint import latest_checkpoint

    seq, record = latest_checkpoint(tmp_path)
    assert seq == engine.cursor
    assert record["state"]["n"] == engine.graph.n
    out = dict(
        n=engine.graph.n,
        checkpoint_bytes=int(nbytes),
        checkpoint_seconds=round(latency_s, 4),
    )
    benchmark.extra_info.update(out)
    persist_bench("BENCH_service.json", {"benchmark": "service_checkpoint", **out})
