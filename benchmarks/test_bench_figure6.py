"""Benchmark E6 — Figure 6: CDS size vs N, dense networks (D = 10).

Same panels as Figure 5 at average degree 10.  Asserts the dense-network
observations: the ordering persists, and backbones are smaller than in the
sparse regime at equal (N, k).
"""

import numpy as np
from conftest import BENCH_NS, BENCH_TRIALS

from repro.figures import figure5, figure6


def _sweep():
    return figure6.run(trials=BENCH_TRIALS, ks=(1, 2, 3, 4), ns=BENCH_NS)


def test_bench_figure6(benchmark):
    result = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print()
    print(figure6.render(result))

    algs = result.config.algorithms
    for k in (1, 2, 3, 4):
        avg = {
            a: np.mean([s.mean for _, s in result.series("cds_size", a, 10.0, k)])
            for a in algs
        }
        assert avg["G-MST"] == min(avg.values()), (k, avg)
        assert avg["NC-LMST"] <= avg["NC-Mesh"] + 1e-9, (k, avg)

    # dense networks need smaller CDS than sparse at the same (N, k)
    sparse = figure5.run(trials=BENCH_TRIALS, ks=(2,), ns=(100,))
    dense_cds = result.cell(100, 10.0, 2).cds_size["AC-LMST"].mean
    sparse_cds = sparse.cell(100, 6.0, 2).cds_size["AC-LMST"].mean
    print(f"AC-LMST CDS at N=100,k=2: sparse {sparse_cds:.1f} vs dense {dense_cds:.1f}")
    assert dense_cds < sparse_cds
