"""Benchmark X1 — the paper's §4 summary claims, checked programmatically.

Runs reduced Figure-5/6 sweeps, evaluates all six claims via
:mod:`repro.figures.claims`, prints the verdict report, and asserts the
claims that are robust at a small trial budget (1: A-NCR helps, 2: LMST on
top helps, 3: scalability, 5: k-monotonicity, 6: near-G-MST).  Claim 4's
"AC-LMST vs NC-LMST gap is small" is printed but not asserted — at low
budgets the gap estimate is noisy.
"""

from conftest import BENCH_NS, BENCH_TRIALS

from repro.figures import claims, figure5, figure6


def _verdicts():
    sparse = figure5.run(trials=BENCH_TRIALS, ks=(1, 2, 3, 4), ns=BENCH_NS)
    dense = figure6.run(trials=BENCH_TRIALS, ks=(2, 3), ns=BENCH_NS)
    return claims.check_claims(sparse, dense)


def test_bench_claims(benchmark):
    verdicts = benchmark.pedantic(_verdicts, rounds=1, iterations=1)
    print()
    print(claims.render_verdicts(verdicts))
    by_id = {v.claim_id: v for v in verdicts}
    for cid in (1, 2, 3, 5, 6):
        assert by_id[cid].holds, f"claim {cid}: {by_id[cid].evidence}"
