"""Benchmark E4 — Figure 4: single-instance gateway selection gallery.

Regenerates the paper's qualitative example (N=100, D=6): runs all four
pictured algorithms on one random instance, prints their gateway counts,
and asserts the ordering the figure demonstrates (mesh needs the most
gateways, LMST fewer, the global MST the fewest).
"""

from conftest import BENCH_TRIALS  # noqa: F401  (shared import-path setup)

from repro.figures import figure4


def _make():
    return figure4.run(n=100, degree=6.0, k=2, seed=4)


def test_bench_figure4(benchmark):
    data = benchmark.pedantic(_make, rounds=3, iterations=1)
    counts = data.gateway_counts()
    print()
    print(f"Figure 4 instance: {data.num_heads} clusterheads, gateways = {counts}")

    # Shape assertions (the figure's message):
    assert counts["G-MST"] <= counts["NC-Mesh"]
    assert counts["NC-LMST"] <= counts["NC-Mesh"]
    assert counts["AC-LMST"] <= counts["NC-Mesh"]
    # every backbone verified inside figure4.run already
