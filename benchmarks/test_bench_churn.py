"""Churn-under-repair benchmark: incremental maintenance vs from-scratch.

The tentpole claim this benchmark measures: with the single-node
``without_nodes`` fast path (CSR patch + oracle cache inheritance),
head-centric ball validation, and the member-failure backbone splice,
:func:`~repro.maintenance.churn.simulate_churn` no longer rebuilds graph +
oracle + clustering on every failure — and must beat the from-scratch
baseline (:func:`~repro.maintenance.churn.simulate_churn_rebuild`, the
seed behavior) by **>= 3x** at the acceptance grid point N=2000 with 50
failures.

The full grid point runs when ``REPRO_BENCH_FULL=1`` (``make
bench-churn``); the default tier-1 pass uses a reduced instance so the
gate stays fast.  The speedup assertion is enforced under
``REPRO_BENCH_STRICT``; deliberate bench runs (strict/full/persist env
flags) record the measurement to ``BENCH_churn.json`` at the repo root.
"""

import os
import time

from conftest import persist_bench

from repro.maintenance.churn import simulate_churn, simulate_churn_rebuild
from repro.net.graph import Graph
from repro.net.topology import random_topology

#: (n, failures) — the acceptance grid point, and the reduced tier-1 one.
FULL_CASE = (2000, 50)
QUICK_CASE = (800, 20)

#: Average degree (same regime as the scaling sweep).
CHURN_DEGREE = 12.0

#: Cluster radius for the maintained backbone.
CHURN_K = 2


def _case():
    return FULL_CASE if os.environ.get("REPRO_BENCH_FULL") else QUICK_CASE


def test_bench_churn_incremental_vs_rebuild(benchmark):
    n, failures = _case()
    topo = random_topology(n, degree=CHURN_DEGREE, seed=31)
    # Fresh copies so neither run inherits the other's warm oracle caches.
    g_rebuild = Graph(topo.graph.n, topo.graph.edges)
    g_incremental = Graph(topo.graph.n, topo.graph.edges)

    # CPU time so the strict >= 3x gate is robust to CI scheduling noise.
    t0 = time.process_time()
    baseline = simulate_churn_rebuild(
        g_rebuild, CHURN_K, failures=failures, seed=5
    )
    t1 = time.process_time()
    report = benchmark.pedantic(
        simulate_churn,
        args=(g_incremental, CHURN_K),
        kwargs=dict(failures=failures, seed=5),
        rounds=1,
        iterations=1,
    )
    t2 = time.process_time()
    rebuild_s, incremental_s = t1 - t0, t2 - t1

    # Same failure order; the incremental path must absorb the same
    # stream (it may stop at the same partition point, never earlier).
    assert [o.failed_node for o in report.outcomes] == [
        o.failed_node for o in baseline.outcomes
    ]
    assert report.stopped_at == baseline.stopped_at
    # §3.3's locality argument: most failures are members and touch nothing.
    assert report.actions["none"] > report.actions["recluster"]

    speedup = rebuild_s / max(incremental_s, 1e-9)
    if os.environ.get("REPRO_BENCH_STRICT"):
        assert speedup >= 3.0, (
            f"incremental churn ({incremental_s:.2f}s) should be >= 3x "
            f"faster than from-scratch ({rebuild_s:.2f}s)"
        )
    record = dict(
        n=n,
        failures=failures,
        k=CHURN_K,
        incremental_seconds=round(incremental_s, 3),
        rebuild_seconds=round(rebuild_s, 3),
        speedup=round(speedup, 1),
        actions=dict(report.actions),
        mean_locality=round(report.mean_locality, 3),
    )
    benchmark.extra_info.update(record)
    persist_bench("BENCH_churn.json", {"benchmark": "churn", **record})


def test_bench_churn_oracle_inheritance(benchmark):
    """Cache carry-over under churn: balls survive failures that miss them.

    Directly measures tentpole prong 3 at the oracle level, without the
    repair ladder on top: after warming per-head-like balls, a removal
    far from most of them inherits nearly the whole ball cache.
    """
    n, _ = _case()
    topo = random_topology(n, degree=CHURN_DEGREE, seed=33)
    g = topo.graph.use_distance_backend("lazy")
    sources = list(range(0, n, 25))
    for s in sources:
        g.oracle.ball(s, CHURN_K)

    def one_removal():
        return g.without_nodes([n // 2])

    g2 = benchmark.pedantic(one_removal, rounds=1, iterations=1)
    stats = g2.oracle.stats()
    assert stats.balls_inherited > 0.8 * len(sources)
    record = dict(
        n=n,
        balls_warmed=len(sources),
        balls_inherited=stats.balls_inherited,
        rows_inherited=stats.rows_inherited,
    )
    benchmark.extra_info.update(record)
    persist_bench(
        "BENCH_churn.json", {"benchmark": "oracle_inheritance", **record}
    )
