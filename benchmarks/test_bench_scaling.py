"""Large-N scaling sweep for the lazy distance oracle (N = 200 → 5000).

The seed implementation sat every algorithm on a dense ``(n, n)``
hop-distance matrix — O(n²) memory and, because each BFS level is an
``(n, n)`` boolean matrix product, far worse time.  These benchmarks pin
down what the CSR-backed :class:`~repro.net.oracle.LazyDistanceOracle`
buys on the clustering + backbone hot path:

* ``test_bench_scaling_lazy`` — full pipeline (cluster, AC-LMST backbone,
  verification) at N = 200 / 1000 / 5000 on the lazy backend, asserting
  that **no dense matrix is ever materialized** and that the oracle's
  peak cache stays far below the O(n²) matrix footprint.
* ``test_bench_dense_vs_lazy_speedup`` — paired dense/lazy runs on the
  same instance, asserting a real speedup and identical results.

Timings land in pytest-benchmark's table and in ``extra_info`` (the
"recorded timings" the scaling acceptance criterion asks for).

Representative measurements on the development container (one run,
``khop_cluster(k=2)`` + ``build_backbone("AC-LMST")``).  PR 1 numbers,
when the dense backend still ran boolean matrix products per BFS level:

======  ===========  ==========  ============================
N       dense        lazy        lazy peak cached bytes
======  ===========  ==========  ============================
800     10.1 s       0.11 s      ~0.9 MB (vs 1.3 MB matrix)
1500    89.6 s       0.22 s      ~1.5 MB (vs 4.5 MB matrix)
5000    (infeasible) ~1.0 s      ~3.8 MB (vs 50 MB matrix)
======  ===========  ==========  ============================

PR 2 moved dense materialization onto the bit-packed batched BFS kernel
(``multi_source_bfs``): dense at N=600 fell from ~6 s to ~0.09 s, and
``test_bench_batched_materialization`` pins the kernel's >= 2x margin
over sequential per-source BFS at N=5000.  The full trajectory lives in
``BENCH_scaling.json`` at the repo root.
"""

import os
import time

import numpy as np
import pytest

from conftest import BENCH_TRIALS, persist_bench  # noqa: F401

from repro.cds.verify import verify_backbone
from repro.core.clustering import khop_cluster
from repro.core.pipeline import build_backbone
from repro.net.graph import Graph
from repro.net.oracle import DIST_DTYPE, _csr_bfs, _dense_all_pairs
from repro.net.topology import random_topology

#: The scaling sweep grid (the paper stops at 200; the oracle should not).
SCALING_NS = (200, 1000, 5000)

#: Average degree for the sweep — comfortably above the connectivity
#: threshold (~log n) at every grid point, so redraws stay rare.
SCALING_DEGREE = 12.0


def _hot_path(n: int, edges, backend: str):
    """Cold-cache clustering + backbone build on a pinned backend."""
    g = Graph(n, edges).use_distance_backend(backend)
    clustering = khop_cluster(g, 2)
    result = build_backbone(clustering, "AC-LMST")
    return g, result


@pytest.mark.parametrize("n", SCALING_NS)
def test_bench_scaling_lazy(benchmark, n):
    topo = random_topology(n, degree=SCALING_DEGREE, seed=21)
    edges = topo.graph.edges

    g, result = benchmark.pedantic(
        _hot_path, args=(n, edges, "lazy"), rounds=1, iterations=1
    )
    verify_backbone(result)
    stats = g.oracle.stats()
    dense_bytes = 4 * n * n  # the int32 matrix this sweep never builds

    assert result.cds_size > 0
    assert g.distance_backend == "lazy"
    # The whole pipeline (clustering, neighbor rule, gateways, paths,
    # verification) must complete without ever materializing O(n²) state.
    assert not g.dense_materialized
    assert stats.rows_computed < n  # only head rows, never all-pairs
    if n >= 1000:
        # Sub-quadratic memory: peak cache well under the dense matrix.
        assert stats.peak_cached_bytes * 4 < dense_bytes

    record = dict(
        n=n,
        m=len(edges),
        heads=len(result.heads),
        gateways=result.num_gateways,
        rows_computed=stats.rows_computed,
        batched_sweeps=stats.batched_sweeps,
        peak_cached_bytes=stats.peak_cached_bytes,
        dense_matrix_bytes=dense_bytes,
        seconds=round(benchmark.stats.stats.mean, 4),
    )
    benchmark.extra_info.update(record)
    persist_bench("BENCH_scaling.json", {"benchmark": "scaling_lazy", **record})


def test_bench_dense_vs_lazy_speedup(benchmark):
    """Paired comparison on one instance: lazy must beat dense, results equal."""
    n = 600
    topo = random_topology(n, degree=SCALING_DEGREE, seed=22)
    edges = topo.graph.edges

    t0 = time.process_time()
    _, dense_result = _hot_path(n, edges, "dense")
    t1 = time.process_time()
    g, lazy_result = benchmark.pedantic(
        _hot_path, args=(n, edges, "lazy"), rounds=1, iterations=1
    )
    t2 = time.process_time()
    dense_s, lazy_s = t1 - t0, t2 - t1

    # Same instance, same algorithms — backends must agree exactly.
    assert dense_result.clustering.head_of == lazy_result.clustering.head_of
    assert dense_result.selected_links == lazy_result.selected_links
    assert dense_result.gateways == lazy_result.gateways
    assert not g.dense_materialized

    # The dense backend now materializes through the batched bit-packed
    # kernel, which collapsed the old ~60-100x gap at this size to ~1.5-2x
    # (dense dropped from ~6s to ~0.1s at N=600).  Lazy must still win —
    # it computes only the rows/balls the pipeline touches — but the
    # strict margin is "faster", not "2x faster".  Wall-clock assertions
    # are environment-dependent, so the tier-1 gate only records timings;
    # `make bench-scaling` sets REPRO_BENCH_STRICT=1 to enforce them.
    if os.environ.get("REPRO_BENCH_STRICT"):
        assert lazy_s < dense_s, (
            f"lazy backend ({lazy_s:.2f}s) should beat dense ({dense_s:.2f}s)"
        )
    record = dict(
        n=n, dense_seconds=round(dense_s, 3), lazy_seconds=round(lazy_s, 3),
        speedup=round(dense_s / max(lazy_s, 1e-9), 1),
    )
    benchmark.extra_info.update(record)
    persist_bench(
        "BENCH_scaling.json", {"benchmark": "dense_vs_lazy", **record}
    )


#: Node counts for the batched-materialization benchmark: the acceptance
#: criterion's full grid point (``REPRO_BENCH_FULL=1`` / `make
#: bench-scaling`), and a reduced instance so the tier-1 gate stays fast.
BATCHED_FULL_N = 5000
BATCHED_QUICK_N = 1200


def test_bench_batched_materialization(benchmark):
    """Bit-packed batched BFS vs sequential per-source ``_csr_bfs``.

    Materializing all rows is the dense-regime warm-up the tentpole
    targets: the batched kernel advances 64 sources per sweep over
    uint64 frontier bitsets, and must beat n sequential BFS runs by at
    least 2x (enforced under ``REPRO_BENCH_STRICT``; recorded on
    deliberate bench runs).
    """
    n = BATCHED_FULL_N if os.environ.get("REPRO_BENCH_FULL") else BATCHED_QUICK_N
    topo = random_topology(n, degree=SCALING_DEGREE, seed=23)
    indptr, indices = topo.graph.csr_adjacency

    def sequential():
        out = np.empty((n, n), dtype=DIST_DTYPE)
        for u in range(n):
            out[u], _ = _csr_bfs(indptr, indices, n, u)
        return out

    def batched():
        # The production dense-materialization path: locality-ordered
        # 64-source bit-packed sweeps (oracle._dense_all_pairs).
        matrix, _ = _dense_all_pairs(topo.graph)
        return matrix

    # CPU time, not wall clock: the strict ratio must not flip on a noisy
    # shared CI runner.
    t0 = time.process_time()
    seq_matrix = sequential()
    t1 = time.process_time()
    batch_matrix = benchmark.pedantic(batched, rounds=1, iterations=1)
    t2 = time.process_time()
    seq_s, batch_s = t1 - t0, t2 - t1

    assert np.array_equal(seq_matrix, batch_matrix)  # same distances
    if os.environ.get("REPRO_BENCH_STRICT"):
        assert batch_s * 2 < seq_s, (
            f"batched BFS ({batch_s:.2f}s) should be >= 2x faster than "
            f"sequential ({seq_s:.2f}s)"
        )
    record = dict(
        n=n,
        m=int(indices.size // 2),
        sequential_seconds=round(seq_s, 3),
        batched_seconds=round(batch_s, 3),
        speedup=round(seq_s / max(batch_s, 1e-9), 1),
    )
    benchmark.extra_info.update(record)
    persist_bench(
        "BENCH_scaling.json", {"benchmark": "batched_materialization", **record}
    )
