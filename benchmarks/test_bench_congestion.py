"""Congestion benchmark: load-adaptive multipath vs canonical routing.

The tentpole claim this benchmark measures: the batch router's
``balance=`` mode (:meth:`~repro.traffic.router.BatchRouter.route_flows`)
— k-shortest head walks, seeded tie-break trees, and load-aware flow
assignment — flattens backbone hot spots on the acceptance grid point
(N=2000, 10,000 uniform flows): Jain fairness over backbone nodes
improves by **>= 20%**, the p99 node load drops, and the mean stretch it
pays for the detours stays within **15%** of canonical.

The full acceptance grid point runs when ``REPRO_BENCH_FULL=1`` (``make
bench-congestion``); the default tier-1 pass uses a reduced instance so
the gate stays fast (the fairness-gain floor relaxes to 10% there — the
head graph is too small for the full headroom).  Gates are enforced
under ``REPRO_BENCH_STRICT``; deliberate bench runs record measurements
to ``BENCH_congestion.json`` at the repo root.

A second benchmark closes the loop through delivery: with per-link
capacities derived from the backbone (:class:`CongestionModel`), the
same batch delivered canonically loses measurably more packets to
fluid-queue drops than its balanced counterpart — congestion pushes
back, and balancing pushes back on the congestion.
"""

import os
import time

from conftest import persist_bench

from repro.core.clustering import khop_cluster
from repro.core.pipeline import build_backbone
from repro.faults.delivery import LossModel, deliver
from repro.net.topology import random_topology
from repro.traffic.congestion import CongestionModel, congestion_report
from repro.traffic.load import link_utilization, measure_load
from repro.traffic.router import BatchRouter
from repro.traffic.workloads import uniform_pairs

#: (n, flows) — the acceptance grid point, and the reduced tier-1 one.
FULL_CASE = (2000, 10_000)
QUICK_CASE = (600, 5_000)

#: Average degree / cluster radius (same regime as the traffic bench).
TRAFFIC_DEGREE = 12.0
TRAFFIC_K = 2

#: STRICT gates: Jain fairness gain (full / reduced) and stretch cap.
FAIRNESS_GAIN_FULL = 1.20
FAIRNESS_GAIN_QUICK = 1.10
STRETCH_INFLATION_CAP = 1.15

#: Fixed instance for the delivery-loop benchmark (independent of
#: REPRO_BENCH_FULL: it gates behavior, not scale).
DELIVERY_CASE = (600, 5_000)
DELIVERY_RADIO_BUDGET = 2000.0


def _case():
    return FULL_CASE if os.environ.get("REPRO_BENCH_FULL") else QUICK_CASE


def _instance(n, flows):
    topo = random_topology(n, degree=TRAFFIC_DEGREE, seed=41)
    backbone = build_backbone(khop_cluster(topo.graph, TRAFFIC_K), "AC-LMST")
    return topo.graph, backbone, uniform_pairs(n, flows, seed=43)


def test_bench_congestion_balance_fairness(benchmark):
    n, flows = _case()
    g, backbone, workload = _instance(n, flows)

    t0 = time.process_time()
    canonical = BatchRouter(backbone).route_flows(workload)
    t1 = time.process_time()
    base = measure_load(backbone, canonical)

    balancer = BatchRouter(backbone)
    routed = benchmark.pedantic(
        balancer.route_flows,
        args=(workload,),
        kwargs=dict(balance=True),
        rounds=1,
        iterations=1,
    )
    t2 = time.process_time()
    load = measure_load(backbone, routed)
    canonical_s, balanced_s = t1 - t0, t2 - t1

    # Balance must keep the batch whole: same flows valid, same
    # endpoints, and the walks it substitutes still deliver.
    assert routed.num_valid == canonical.num_valid
    step = max(1, flows // 200)
    for i in range(0, flows, step):
        assert routed.walks[i][0] == canonical.walks[i][0]
        assert routed.walks[i][-1] == canonical.walks[i][-1]

    gain = load.backbone_fairness / base.backbone_fairness
    inflation = load.mean_stretch / base.mean_stretch
    if os.environ.get("REPRO_BENCH_STRICT"):
        floor = (
            FAIRNESS_GAIN_FULL
            if os.environ.get("REPRO_BENCH_FULL")
            else FAIRNESS_GAIN_QUICK
        )
        assert gain >= floor, (
            f"balanced fairness {load.backbone_fairness:.3f} is only "
            f"{gain:.3f}x canonical {base.backbone_fairness:.3f} "
            f"(gate {floor}x)"
        )
        assert load.p99_node_load < base.p99_node_load, (
            f"balanced p99 load {load.p99_node_load:.0f} should undercut "
            f"canonical {base.p99_node_load:.0f}"
        )
        assert inflation <= STRETCH_INFLATION_CAP, (
            f"balanced mean stretch {load.mean_stretch:.3f} inflates "
            f"canonical {base.mean_stretch:.3f} by {inflation:.3f}x "
            f"(cap {STRETCH_INFLATION_CAP}x)"
        )
    record = dict(
        n=n,
        flows=flows,
        k=TRAFFIC_K,
        canonical_seconds=round(canonical_s, 3),
        balanced_seconds=round(balanced_s, 3),
        canonical_fairness=round(base.backbone_fairness, 3),
        balanced_fairness=round(load.backbone_fairness, 3),
        fairness_gain=round(gain, 3),
        canonical_p99_load=base.p99_node_load,
        balanced_p99_load=load.p99_node_load,
        canonical_max_load=base.max_node_load,
        balanced_max_load=load.max_node_load,
        canonical_stretch=round(base.mean_stretch, 3),
        balanced_stretch=round(load.mean_stretch, 3),
        stretch_inflation=round(inflation, 3),
        **{f"balance_{k}": v for k, v in balancer.last_balance.items()},
    )
    benchmark.extra_info.update(record)
    persist_bench(
        "BENCH_congestion.json", {"benchmark": "balance_fairness", **record}
    )


def test_bench_congestion_delivery_pushback(benchmark):
    """Congestion drops bite the canonical batch harder than the balanced one."""
    n, flows = DELIVERY_CASE
    g, backbone, workload = _instance(n, flows)
    model = CongestionModel.from_backbone(
        backbone, radio_budget=DELIVERY_RADIO_BUDGET
    )
    no_faults = LossModel.uniform(g.n, 0.0)

    canonical = BatchRouter(backbone).route_flows(workload, with_shortest=False)
    balanced = BatchRouter(backbone).route_flows(
        workload, with_shortest=False, balance=True
    )
    base_report = congestion_report(model, canonical)
    bal_report = congestion_report(model, balanced)

    # Capacity conservation: fluid drops never let carried load exceed
    # the link's capacity, and never fire under capacity.
    offered = link_utilization(canonical, g.n)
    drops = model.drop_probabilities(offered)
    for e, q in offered.items():
        c = model.capacity.get(e)
        if c is None:
            continue
        carried = q * (1.0 - drops.get(e, 0.0))
        assert carried <= c * (1.0 + 1e-9)
        if q <= c:
            assert e not in drops

    base_delivery = deliver(canonical, no_faults, seed=97, congestion=model)
    bal_delivery = benchmark.pedantic(
        deliver,
        args=(balanced, no_faults),
        kwargs=dict(seed=97, congestion=model),
        rounds=1,
        iterations=1,
    )

    # The congested regime actually bites, and balancing relieves it.
    assert base_report.congested_links > 0
    assert base_delivery.delivered_fraction < 1.0
    if os.environ.get("REPRO_BENCH_STRICT"):
        assert bal_report.drop_fraction < base_report.drop_fraction, (
            f"balanced fluid drops {bal_report.drop_fraction:.3f} should "
            f"undercut canonical {base_report.drop_fraction:.3f}"
        )
        assert (
            bal_delivery.delivered_fraction
            > base_delivery.delivered_fraction
        ), (
            f"balanced delivery {bal_delivery.delivered_fraction:.3f} "
            f"should beat canonical "
            f"{base_delivery.delivered_fraction:.3f}"
        )
    record = dict(
        n=n,
        flows=flows,
        k=TRAFFIC_K,
        radio_budget=DELIVERY_RADIO_BUDGET,
        links=base_report.links,
        canonical_congested_links=base_report.congested_links,
        balanced_congested_links=bal_report.congested_links,
        canonical_drop_fraction=round(base_report.drop_fraction, 4),
        balanced_drop_fraction=round(bal_report.drop_fraction, 4),
        canonical_delivered=round(base_delivery.delivered_fraction, 4),
        balanced_delivered=round(bal_delivery.delivered_fraction, 4),
        canonical_mean_attempts=round(base_delivery.mean_attempts, 3),
        balanced_mean_attempts=round(bal_delivery.mean_attempts, 3),
    )
    benchmark.extra_info.update(record)
    persist_bench(
        "BENCH_congestion.json", {"benchmark": "delivery_pushback", **record}
    )
