"""Benchmark A8 — related-work clustering baselines (§1/§2 comparisons).

* Max-Min d-cluster [2] vs the paper's lowest-ID k-hop clustering: head
  counts (Max-Min lacks the independent-set property and typically elects
  more heads).
* Krishna k-clusters [8] vs the paper's definition: membership
  multiplicity (the overlap the paper's non-overlapping definition
  avoids).
"""

import numpy as np
from conftest import BENCH_TRIALS

from repro.analysis.tables import format_table
from repro.core.clustering import khop_cluster
from repro.core.kcluster import kcluster_stats
from repro.core.maxmin import maxmin_cluster
from repro.net.topology import random_topology


def _measure(n=80, degree=8.0, ks=(1, 2), trials=BENCH_TRIALS):
    rows = []
    for k in ks:
        li_heads, mm_heads, mult = [], [], []
        for t in range(trials):
            topo = random_topology(n, degree, seed=9900 + 10 * k + t)
            li_heads.append(khop_cluster(topo.graph, k).num_clusters)
            mm_heads.append(maxmin_cluster(topo.graph, k).num_clusters)
            mult.append(kcluster_stats(topo.graph, k)["mean_multiplicity"])
        rows.append(
            (
                k,
                float(np.mean(li_heads)),
                float(np.mean(mm_heads)),
                float(np.mean(mult)),
            )
        )
    return rows


def test_bench_alternatives(benchmark):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["k", "lowest-ID heads", "Max-Min heads", "k-cluster multiplicity"],
            [(k, f"{a:.1f}", f"{b:.1f}", f"{m:.2f}") for k, a, b, m in rows],
        )
    )
    for k, li, mm, mult in rows:
        # Krishna clusters overlap; the paper's partition does not.
        assert mult > 1.0
        # both algorithms elect a non-trivial number of heads
        assert li >= 1 and mm >= 1
