"""Micro-benchmarks of the computational kernels (profiling guard rails).

These catch performance regressions in the pieces every experiment hammers:
topology generation, the all-pairs hop-distance sweep, k-hop clustering,
and the LMST gateway stage.
"""

from conftest import BENCH_TRIALS  # noqa: F401

from repro.core.clustering import khop_cluster
from repro.core.neighbor import ancr_neighbors
from repro.core.pipeline import build_backbone
from repro.net.graph import Graph
from repro.net.topology import random_topology


def test_bench_topology_generation(benchmark):
    benchmark(lambda: random_topology(200, 6.0, seed=11))


def test_bench_hop_distances(benchmark):
    topo = random_topology(200, 6.0, seed=12)
    edges = topo.graph.edges

    def build_and_measure():
        g = Graph(200, edges)  # fresh graph: cold cache
        return g.hop_distances

    benchmark(build_and_measure)


def test_bench_khop_clustering(benchmark):
    topo = random_topology(200, 6.0, seed=13)
    topo.graph.hop_distances  # warm the distance cache

    result = benchmark(lambda: khop_cluster(topo.graph, 2))
    assert result.num_clusters > 0


def test_bench_ancr(benchmark):
    topo = random_topology(200, 6.0, seed=14)
    cl = khop_cluster(topo.graph, 2)
    nmap = benchmark(lambda: ancr_neighbors(cl))
    assert nmap


def test_bench_aclmst_pipeline(benchmark):
    topo = random_topology(200, 6.0, seed=15)
    cl = khop_cluster(topo.graph, 2)
    res = benchmark(lambda: build_backbone(cl, "AC-LMST"))
    assert res.cds_size > 0
