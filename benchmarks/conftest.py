"""Benchmark conftest: import path + a shared default trial budget.

The benchmarks regenerate every paper artifact with a reduced trial budget
(full fidelity is the CLI's job: ``repro-khop all``).  Override with the
``REPRO_TRIALS`` environment variable.
"""

import os
import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

#: Trials per cell used by the benchmark harness (small but statistically
#: meaningful; the shape assertions below are robust at this budget).
BENCH_TRIALS = int(os.environ.get("REPRO_TRIALS", "3"))

#: Reduced N grid for benchmark sweeps.
BENCH_NS = (50, 100, 150)


# --------------------------------------------------------------------- #
# perf-trajectory persistence
# --------------------------------------------------------------------- #

import json
import platform
import time

#: Repo root — BENCH_*.json files land here so the perf trajectory is
#: tracked in version control alongside the code that produced it.
REPO_ROOT = Path(__file__).resolve().parents[1]


def persist_bench(filename: str, record: dict) -> None:
    """Append one benchmark record to a repo-root JSON trajectory file.

    Each file holds a list of records, newest last; a record is whatever
    the benchmark measured plus a timestamp and interpreter tag, so
    successive PRs can diff the trajectory (``BENCH_scaling.json``,
    ``BENCH_churn.json``).

    Only *deliberate* benchmark runs persist — ``REPRO_BENCH_STRICT`` /
    ``REPRO_BENCH_FULL`` / ``REPRO_BENCH_PERSIST`` set (the ``make
    bench-*`` targets and the CI smoke job).  A plain tier-1 ``make
    test`` must not dirty the version-controlled trajectory with reduced
    quick-case noise.
    """
    if not (
        os.environ.get("REPRO_BENCH_STRICT")
        or os.environ.get("REPRO_BENCH_FULL")
        or os.environ.get("REPRO_BENCH_PERSIST")
    ):
        return
    path = REPO_ROOT / filename
    try:
        history = json.loads(path.read_text())
    except (FileNotFoundError, json.JSONDecodeError):
        history = []
    history.append(
        {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "python": platform.python_version(),
            **record,
        }
    )
    path.write_text(json.dumps(history, indent=2) + "\n")
