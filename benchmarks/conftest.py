"""Benchmark conftest: import path + a shared default trial budget.

The benchmarks regenerate every paper artifact with a reduced trial budget
(full fidelity is the CLI's job: ``repro-khop all``).  Override with the
``REPRO_TRIALS`` environment variable.
"""

import os
import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

#: Trials per cell used by the benchmark harness (small but statistically
#: meaningful; the shape assertions below are robust at this budget).
BENCH_TRIALS = int(os.environ.get("REPRO_TRIALS", "3"))

#: Reduced N grid for benchmark sweeps.
BENCH_NS = (50, 100, 150)
