"""Observability-layer overhead gate: traced vs untraced quick pipeline.

The obs layer promises a no-op fast path: with tracing disabled the
instrumented engine pays one flag test per publish site, and with it
enabled the span/counter bookkeeping stays negligible next to the real
work.  This benchmark runs the same quick traffic pipeline both ways,
interleaved best-of-N on CPU time (robust to CI scheduling noise), and
under ``REPRO_BENCH_STRICT`` enforces **traced <= untraced x 1.02** —
the <= 2% overhead acceptance gate.  Deliberate runs persist both arms
plus the traced run's per-stage span breakdown to ``BENCH_obs.json``.
"""

import os
import time

from conftest import persist_bench

from repro import obs
from repro.traffic.report import run_traffic

#: The quick-pipeline case both arms run (identical seeds -> identical work).
OBS_CASE = dict(n=1000, degree=8.0, k=2, flows=500, seed=41)

#: Interleaved measurement rounds per arm; best-of wins.
ROUNDS = 3

#: The strict acceptance margin: traced within 2% of untraced.
OVERHEAD_GATE = 1.02


def _one_run(traced: bool) -> tuple[float, list]:
    """One pipeline run; returns (cpu seconds, finished root spans)."""
    obs.set_enabled(traced)
    obs.reset()
    obs.reset_tracer()
    try:
        t0 = time.process_time()
        report = run_traffic(**OBS_CASE)
        elapsed = time.process_time() - t0
        spans = obs.take_finished()
    finally:
        obs.reset()
        obs.reset_tracer()
        obs.set_enabled(False)
    assert report.load.packet_hops > 0
    assert bool(spans) == traced
    return elapsed, spans


def test_bench_obs_overhead_gate(benchmark):
    # Warm both arms once (imports, allocator) before measuring.
    _one_run(False)
    _, warm_spans = _one_run(True)

    untraced: list[float] = []
    traced: list[float] = []
    for _ in range(ROUNDS):  # interleaved so drift hits both arms alike
        untraced.append(_one_run(False)[0])
        traced.append(_one_run(True)[0])
    best_untraced, best_traced = min(untraced), min(traced)
    overhead = best_traced / max(best_untraced, 1e-9)
    benchmark.pedantic(_one_run, args=(False,), rounds=1, iterations=1)

    if os.environ.get("REPRO_BENCH_STRICT"):
        assert overhead <= OVERHEAD_GATE, (
            f"traced quick pipeline ({best_traced:.3f}s) exceeds the "
            f"{OVERHEAD_GATE:.0%} overhead gate over untraced "
            f"({best_untraced:.3f}s): x{overhead:.3f}"
        )

    # The traced arm measured the real pipeline: its span tree covers the
    # stages and its self-times telescope to the root duration.
    (root,) = warm_spans
    names = {sp.name for sp in root.walk()}
    assert {"traffic", "topology", "cluster", "cds", "router"} <= names
    covered = sum(sp.self_time for sp in root.walk())
    assert covered >= 0.90 * root.duration

    stage_seconds = {
        sp.name: round(sp.duration, 3) for sp in root.children
    }
    record = dict(
        benchmark="obs_overhead",
        **OBS_CASE,
        rounds=ROUNDS,
        untraced_seconds=round(best_untraced, 3),
        traced_seconds=round(best_traced, 3),
        overhead=round(overhead, 4),
        stages=stage_seconds,
    )
    benchmark.extra_info.update(record)
    persist_bench("BENCH_obs.json", record)
    print(
        f"\nobs overhead: untraced {best_untraced:.3f}s, "
        f"traced {best_traced:.3f}s (x{overhead:.3f}, gate "
        f"{OVERHEAD_GATE:.2f} strict-only)"
    )
