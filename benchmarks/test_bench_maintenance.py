"""Benchmark A5 — §3.3 maintenance: locality of failure repair.

Kills random nodes one at a time (fresh backbone each time) and tabulates
the repair action by role.  Asserts the paper's locality argument: most
failures are members (no action) or gateways (local fix); full
re-clustering is reserved for the rare clusterhead failures.
"""

import numpy as np
from conftest import BENCH_TRIALS

from repro.analysis.tables import format_table
from repro.core.clustering import khop_cluster
from repro.core.pipeline import build_backbone
from repro.maintenance.repair import repair
from repro.net.topology import random_topology


def _measure(n=100, degree=6.0, k=2, trials=BENCH_TRIALS, kills_per_trial=12):
    actions = {"none": 0, "gateway-reselect": 0, "recluster": 0, "partition": 0}
    by_role = {"member": 0, "gateway": 0, "head": 0}
    localities = []
    for t in range(trials):
        topo = random_topology(n, degree, seed=5000 + t)
        backbone = build_backbone(khop_cluster(topo.graph, k), "AC-LMST")
        rng = np.random.default_rng(t)
        for node in rng.choice(n, size=kills_per_trial, replace=False):
            out = repair(backbone, int(node))
            actions[out.action] += 1
            by_role[out.role] += 1
            if out.backbone is not None:
                localities.append(out.locality)
    return actions, by_role, localities


def test_bench_maintenance(benchmark):
    actions, by_role, localities = benchmark.pedantic(
        _measure, rounds=1, iterations=1
    )
    total = sum(actions.values())
    print()
    print(
        format_table(
            ["action", "count", "share"],
            [(a, c, f"{100 * c / total:.0f}%") for a, c in actions.items()],
        )
    )
    print(f"roles killed: {by_role}; mean repair locality "
          f"{np.mean(localities):.2f} (1.0 = untouched heads)")

    # member failures dominate (heads are few), so cheap repairs dominate:
    cheap = actions["none"] + actions["gateway-reselect"] + actions["partition"]
    assert actions["recluster"] <= cheap
    # reclustering happens at most about as often as head kills (escalations
    # from stretched members are possible but rare)
    assert actions["recluster"] <= by_role["head"] + 0.25 * total
    assert np.mean(localities) > 0.5
