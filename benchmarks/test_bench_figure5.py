"""Benchmark E5 — Figure 5: CDS size vs N, sparse networks (D = 6).

Regenerates all four panels (k = 1..4, five algorithms) at a reduced trial
budget, prints the same rows the paper plots, and asserts the figure's
shape: growth with N, mesh >= LMST, AC <= NC, G-MST lowest on average.
"""

import numpy as np
from conftest import BENCH_NS, BENCH_TRIALS

from repro.figures import figure5


def _sweep():
    return figure5.run(trials=BENCH_TRIALS, ks=(1, 2, 3, 4), ns=BENCH_NS)


def test_bench_figure5(benchmark):
    result = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print()
    print(figure5.render(result))

    algs = result.config.algorithms
    for k in (1, 2, 3, 4):
        series = {a: result.series("cds_size", a, 6.0, k) for a in algs}
        # (a) CDS size grows with N for every algorithm
        for a in algs:
            means = [s.mean for _, s in series[a]]
            assert means[-1] > means[0], (a, k, means)
        # (b) averaged over N: LMST beats Mesh, G-MST is the smallest
        avg = {a: np.mean([s.mean for _, s in series[a]]) for a in algs}
        assert avg["NC-LMST"] <= avg["NC-Mesh"] + 1e-9, (k, avg)
        assert avg["AC-Mesh"] <= avg["NC-Mesh"] + 1e-9, (k, avg)
        assert avg["G-MST"] == min(avg.values()), (k, avg)
