"""Benchmark A9 — fault tolerance: lossy delivery and graceful degradation.

Two measurements back the robustness claim:

* a delivery curve over loss tiers — the same routed workload delivered
  naively (one attempt) versus with retry/backoff;
* a crash-campaign composite — a seeded campaign kills nodes while the
  robust pipeline (retries + component-local degraded routing) and the
  naive pipeline (one attempt, gives up whenever the survivor graph is
  partitioned) replay the same flows.

The acceptance assertion is the ISSUE's floor: at the mid loss tier the
robust pipeline must deliver at least 1.5x the naive fraction.
"""

import numpy as np
from conftest import BENCH_TRIALS, persist_bench

from repro.analysis.tables import format_table
from repro.core.clustering import khop_cluster
from repro.core.pipeline import build_backbone
from repro.faults.delivery import LossModel, deliver
from repro.faults.plan import FaultState, crash_plan
from repro.net.topology import random_topology
from repro.traffic.mobile import route_degraded
from repro.traffic.router import BatchRouter
from repro.traffic.workloads import uniform_pairs

LOSS_TIERS = (0.05, 0.15, 0.30)
MID_TIER = 0.15


def _delivery_curve(n=100, degree=7.0, k=2, flows=300, trials=BENCH_TRIALS):
    """Per-tier mean delivered fraction, naive vs retry, intact network."""
    rows = {}
    for tier in LOSS_TIERS:
        naive, retry = [], []
        for t in range(trials):
            topo = random_topology(n, degree, seed=6000 + t)
            backbone = build_backbone(khop_cluster(topo.graph, k), "AC-LMST")
            wl = uniform_pairs(n, flows, seed=t)
            routed = BatchRouter(backbone).route_flows(wl)
            loss = LossModel.uniform(n, tier)
            naive.append(
                deliver(routed, loss, seed=t, max_attempts=1)
                .delivered_fraction
            )
            retry.append(
                deliver(routed, loss, seed=t, max_attempts=4)
                .delivered_fraction
            )
        rows[tier] = (float(np.mean(naive)), float(np.mean(retry)))
    return rows


def _campaign_composite(
    n=100,
    degree=6.0,
    k=2,
    flows=200,
    crashes=20,
    epochs=10,
    tier=MID_TIER,
    trials=BENCH_TRIALS,
):
    """Robust (retry + degraded routing) vs naive under a crash campaign.

    Per epoch the survivor graph is re-clustered and the workload
    replayed.  The naive pipeline delivers nothing when the survivors are
    partitioned; the robust one serves same-component flows and retries.
    """
    robust, naive, partitioned_epochs = [], [], 0
    for t in range(trials):
        topo = random_topology(n, degree, seed=6100 + t)
        wl = uniform_pairs(n, flows, seed=t)
        loss = LossModel.uniform(n, tier)
        state = FaultState(topo.graph)
        plan = crash_plan(topo.graph, count=crashes, epochs=epochs, seed=t)
        for epoch, g in state.run(plan):
            _, routed = route_degraded(g, k, wl)
            report = deliver(
                routed,
                loss,
                seed=1000 * t + epoch,
                max_attempts=4,
                routable=routed.valid,
            )
            robust.append(report.delivered_fraction)
            survivors = [c for c in g.connected_components()
                         if not set(c) <= state.dead]
            if len(survivors) > 1:
                partitioned_epochs += 1
                naive.append(0.0)
            else:
                naive.append(
                    deliver(
                        routed,
                        loss,
                        seed=1000 * t + epoch,
                        max_attempts=1,
                        routable=routed.valid,
                    ).delivered_fraction
                )
    return float(np.mean(robust)), float(np.mean(naive)), partitioned_epochs


def test_bench_faults(benchmark):
    (curve, composite) = benchmark.pedantic(
        lambda: (_delivery_curve(), _campaign_composite()),
        rounds=1,
        iterations=1,
    )
    robust, naive, partitioned = composite
    print()
    print(
        format_table(
            ["loss", "naive", "retry", "gain"],
            [
                (f"{tier:.2f}", f"{a:.3f}", f"{b:.3f}", f"{b / max(a, 1e-9):.2f}x")
                for tier, (a, b) in curve.items()
            ],
        )
    )
    print(
        f"crash campaign @ loss {MID_TIER}: robust {robust:.3f} vs naive "
        f"{naive:.3f} ({partitioned} partitioned epochs)"
    )

    # Retries help at every tier, and more where loss is worse.
    for tier, (a, b) in curve.items():
        assert b >= a
    gains = [b / max(a, 1e-9) for _, (a, b) in sorted(curve.items())]
    assert gains[-1] >= gains[0]
    # The ISSUE's acceptance floor: retry + degraded-mode delivery beats
    # the naive single-attempt pipeline by >= 1.5x at the mid loss tier.
    mid_naive, mid_retry = curve[MID_TIER]
    assert mid_retry >= 1.5 * mid_naive or robust >= 1.5 * max(naive, 1e-9)
    assert robust >= 1.5 * max(naive, 1e-9)

    persist_bench(
        "BENCH_faults.json",
        {
            "benchmark": "faults",
            "delivery_curve": {
                str(tier): {"naive": a, "retry": b}
                for tier, (a, b) in curve.items()
            },
            "campaign": {
                "loss": MID_TIER,
                "robust": robust,
                "naive": naive,
                "partitioned_epochs": partitioned,
            },
        },
    )
