"""Traffic-engine benchmark: batched flow routing vs looped scalar routing.

The tentpole claim this benchmark measures: the batch router
(:class:`~repro.traffic.router.BatchRouter`) — shared head-graph Dijkstra
trees, per-head-pair walk caches, leg reuse, and bit-packed batched BFS
rows — routes >= 10,000 flows over an N=2000 unit-disk backbone **>= 10x**
faster than looping per-pair :func:`repro.cds.routing.route` calls (which
rebuild the head graph and re-run Dijkstra for every flow), while
producing *identical walks* on a sampled subset.

The full acceptance grid point runs when ``REPRO_BENCH_FULL=1`` (``make
bench-traffic``); the default tier-1 pass uses a reduced instance so the
gate stays fast.  The speedup assertion is enforced under
``REPRO_BENCH_STRICT``; deliberate bench runs record the measurement to
``BENCH_traffic.json`` at the repo root.

A second benchmark runs the traffic-driven lifetime acceptance scenario
end to end (load-proportional drain -> backbone death -> repair ->
replay) and records the rotation-vs-static time-to-first-partition gap.
"""

import os
import time

from conftest import persist_bench

from repro.cds.routing import route
from repro.core.clustering import khop_cluster
from repro.core.pipeline import build_backbone
from repro.net.energy import EnergyParams
from repro.net.paths import PathOracle
from repro.net.topology import random_topology
from repro.traffic.lifetime import compare_rotation_under_traffic
from repro.traffic.load import measure_load
from repro.traffic.router import BatchRouter
from repro.traffic.workloads import uniform_pairs

#: (n, flows) — the acceptance grid point, and the reduced tier-1 one.
FULL_CASE = (2000, 10_000)
QUICK_CASE = (600, 5_000)

#: Average degree (same regime as the scaling/churn benchmarks).
TRAFFIC_DEGREE = 12.0

#: Cluster radius of the routed backbone.
TRAFFIC_K = 2

#: Flows cross-checked walk-for-walk between the two routers.
EQUIVALENCE_SAMPLES = 200


def _case():
    return FULL_CASE if os.environ.get("REPRO_BENCH_FULL") else QUICK_CASE


def test_bench_traffic_batch_vs_scalar(benchmark):
    n, flows = _case()
    topo = random_topology(n, degree=TRAFFIC_DEGREE, seed=41)
    g = topo.graph
    backbone = build_backbone(khop_cluster(g, TRAFFIC_K), "AC-LMST")
    workload = uniform_pairs(n, flows, seed=43)

    # Baseline: one scalar route() per flow — head graph rebuilt and
    # Dijkstra re-run every call (the pre-traffic-engine behavior), with
    # a shared canonical-path oracle (its best realistic configuration).
    scalar_oracle = PathOracle(g)
    pairs = list(zip(workload.sources.tolist(), workload.targets.tolist()))
    t0 = time.process_time()
    scalar_walks = [route(backbone, scalar_oracle, s, t) for s, t in pairs]
    t1 = time.process_time()

    # Timed work = routing only, matching what the scalar loop does; the
    # optional shortest-distance query for stretch runs outside the clock.
    router = BatchRouter(backbone)
    routed = benchmark.pedantic(
        router.route_flows,
        args=(workload,),
        kwargs=dict(with_shortest=False),
        rounds=1,
        iterations=1,
    )
    t2 = time.process_time()
    scalar_s, batch_s = t1 - t0, t2 - t1

    # Identical walks on the sampled subset — identical stretch follows,
    # asserted explicitly against one bulk pair-distance query.
    step = max(1, flows // EQUIVALENCE_SAMPLES)
    sample = list(range(0, flows, step))
    for i in sample:
        assert routed.walks[i] == scalar_walks[i], pairs[i]
    shortest = g.oracle.pair_distances([pairs[i] for i in sample])
    for i, d in zip(sample, shortest.tolist()):
        batch_stretch = (len(routed.walks[i]) - 1) / d
        scalar_stretch = (len(scalar_walks[i]) - 1) / d
        assert batch_stretch == scalar_stretch

    load = measure_load(backbone, routed)
    assert load.packet_hops == sum(
        len(w) - 1 for w in scalar_walks
    )  # same total work routed

    speedup = scalar_s / max(batch_s, 1e-9)
    if os.environ.get("REPRO_BENCH_STRICT"):
        assert speedup >= 10.0, (
            f"batch routing ({batch_s:.2f}s) should be >= 10x faster than "
            f"{flows} looped route() calls ({scalar_s:.2f}s)"
        )
    sampled_stretch = sum(
        (len(routed.walks[i]) - 1) / d
        for i, d in zip(sample, shortest.tolist())
    ) / len(sample)
    record = dict(
        n=n,
        flows=flows,
        k=TRAFFIC_K,
        batch_seconds=round(batch_s, 3),
        scalar_seconds=round(scalar_s, 3),
        speedup=round(speedup, 1),
        mean_stretch_sampled=round(sampled_stretch, 3),
        max_node_load=load.max_node_load,
        cds_share=round(load.cds_share, 3),
        backbone_fairness=round(load.backbone_fairness, 3),
    )
    benchmark.extra_info.update(record)
    persist_bench("BENCH_traffic.json", {"benchmark": "batch_routing", **record})


def test_bench_traffic_lifetime_rotation_gap(benchmark):
    """The acceptance scenario: rotation outlives static heads under load."""
    topo = random_topology(150, degree=8.0, seed=11)
    workload = uniform_pairs(topo.graph.n, 500, seed=5)
    params = EnergyParams(
        initial=8000.0,
        tx_cost=1.0,
        rx_cost=0.5,
        idle_member=0.01,
        idle_backbone=1.0,
    )

    reports = benchmark.pedantic(
        compare_rotation_under_traffic,
        args=(topo.graph, TRAFFIC_K, workload),
        kwargs=dict(epochs=120, params=params),
        rounds=1,
        iterations=1,
    )
    energy, static = reports["energy"], reports["static"]
    # the drain regime actually kills backbone nodes and partitions
    assert static.first_partition_epoch is not None
    assert static.deaths[0][2] in ("head", "gateway")
    # rotation measurably extends time-to-first-partition
    assert energy.lifetime > static.lifetime
    record = dict(
        n=topo.graph.n,
        flows=workload.num_flows,
        epochs=120,
        energy_lifetime=energy.lifetime,
        static_lifetime=static.lifetime,
        energy_deaths=energy.total_deaths,
        static_deaths=static.total_deaths,
        energy_distinct_heads=energy.distinct_heads,
        static_distinct_heads=static.distinct_heads,
    )
    benchmark.extra_info.update(record)
    persist_bench(
        "BENCH_traffic.json", {"benchmark": "lifetime_rotation", **record}
    )
