"""Benchmark A7 — clustering stability under mobility (§1's small-k claim).

"Small k may help to construct a combinatorially stable system": under
random-waypoint mobility, the fraction of nodes whose k-hop neighborhood
a topology change touches — the update footprint any maintenance policy
must pay — grows with k.
"""

import numpy as np
from conftest import BENCH_TRIALS

from repro.analysis.tables import format_table
from repro.maintenance.stability import simulate_stability
from repro.net.topology import random_topology


def _measure(n=80, degree=10.0, ks=(1, 2, 3), steps=10, trials=BENCH_TRIALS):
    rows = []
    for k in ks:
        affected, head_churn, member_churn = [], [], []
        for t in range(trials):
            topo = random_topology(n, degree, seed=8800 + t)
            rep = simulate_stability(
                topo, k, steps=steps, speed=(1.0, 2.0), seed=t
            )
            if rep.steps:
                affected.append(rep.mean("affected_nodes"))
                head_churn.append(rep.mean("head_churn"))
                member_churn.append(rep.mean("membership_churn"))
        rows.append(
            (
                k,
                float(np.mean(affected)),
                float(np.mean(head_churn)),
                float(np.mean(member_churn)),
            )
        )
    return rows


def test_bench_stability(benchmark):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["k", "affected nodes", "head churn", "membership churn"],
            [
                (k, f"{a:.2f}", f"{h:.2f}", f"{m:.2f}")
                for k, a, h, m in rows
            ],
        )
    )
    # the update footprint grows with k (the paper's small-k argument)
    affected = [a for _, a, _, _ in rows]
    assert affected[0] <= affected[-1] + 1e-9, affected
