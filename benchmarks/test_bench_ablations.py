"""Benchmarks A1/A2 — ablations over membership policies and priorities."""

from conftest import BENCH_TRIALS

from repro.figures import ablations


def test_bench_membership_ablation(benchmark):
    rows = benchmark.pedantic(
        lambda: ablations.run_membership(trials=BENCH_TRIALS), rounds=1, iterations=1
    )
    by = {r.policy: r for r in rows}
    print()
    print(ablations.render(rows, [], []) if False else "")
    print(
        "membership ablation:",
        {p: (round(r.cluster_size_std, 2), round(r.mean_head_distance, 2)) for p, r in by.items()},
    )
    # distance-based minimizes member-to-head distance
    assert (
        by["distance-based"].mean_head_distance
        <= by["id-based"].mean_head_distance + 1e-9
    )
    # size-based minimizes cluster-size spread
    assert by["size-based"].cluster_size_std <= by["id-based"].cluster_size_std + 1e-9


def test_bench_priority_ablation(benchmark):
    rows = benchmark.pedantic(
        lambda: ablations.run_priority(trials=BENCH_TRIALS), rounds=1, iterations=1
    )
    print()
    print("priority ablation:", {r.scheme: round(r.num_heads, 1) for r in rows})
    assert {r.scheme for r in rows} == {"lowest-id", "highest-degree", "random-timer"}
    # all schemes produce valid, similarly sized head sets (within 2x)
    counts = [r.num_heads for r in rows]
    assert max(counts) <= 2.0 * min(counts) + 2


def test_bench_neighbor_rule_ablation(benchmark):
    rows = benchmark.pedantic(
        lambda: ablations.run_neighbor_rules(trials=BENCH_TRIALS),
        rounds=1,
        iterations=1,
    )
    by = {r.rule: r.pairs for r in rows}
    print()
    print("neighbor-rule pairs at k=1:", {k: round(v, 1) for k, v in by.items()})
    # the paper's refinement chain: A-NCR needs the fewest connections
    assert by["A-NCR"] <= by["Wu-Lou 2.5-hop"] <= by["NC(2k+1)"]
