"""Benchmark A4 — broadcast cost: blind flooding vs the k-hop backbone.

The paper's §1 motivation: clustering confines flooding.  Measures mean
transmissions for blind flooding (= N on connected graphs) against
backbone broadcast (tree-mode intra-cluster dissemination) across k.
"""

import numpy as np
from conftest import BENCH_TRIALS

from repro.analysis.tables import format_table
from repro.cds.broadcast import backbone_broadcast, blind_flood
from repro.cds.builder import build_cds
from repro.core.clustering import khop_cluster
from repro.core.pipeline import build_backbone
from repro.net.paths import PathOracle
from repro.net.topology import random_topology


def _measure(n=100, degree=6.0, ks=(1, 2, 3), trials=BENCH_TRIALS, sources=5):
    rows = []
    for k in ks:
        flood_tx, bb_tx = [], []
        for t in range(trials):
            topo = random_topology(n, degree, seed=1000 * k + t)
            cl = khop_cluster(topo.graph, k)
            cds = build_cds(build_backbone(cl, "AC-LMST"))
            oracle = PathOracle(topo.graph)
            rng = np.random.default_rng(t)
            for src in rng.choice(n, size=sources, replace=False):
                f = blind_flood(topo.graph, int(src))
                b = backbone_broadcast(cds, oracle, int(src), mode="tree")
                assert f.delivered_all and b.delivered_all
                flood_tx.append(f.transmissions)
                bb_tx.append(b.transmissions)
        rows.append((k, float(np.mean(flood_tx)), float(np.mean(bb_tx))))
    return rows


def test_bench_broadcast(benchmark):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["k", "flooding tx", "backbone tx", "saving"],
            [
                (k, f"{f:.1f}", f"{b:.1f}", f"{100 * (1 - b / f):.0f}%")
                for k, f, b in rows
            ],
        )
    )
    # the backbone broadcast must beat flooding at every k
    for k, flood, backbone in rows:
        assert backbone < flood, (k, flood, backbone)
