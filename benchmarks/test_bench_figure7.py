"""Benchmark E7 — Figure 7: the effect of k (heads and CDS size, D = 6).

Regenerates both panels under AC-LMST and asserts the paper's two
monotonicity claims: more k, fewer clusterheads; more k, smaller CDS.
"""

import numpy as np
from conftest import BENCH_NS, BENCH_TRIALS

from repro.figures import figure7


def _sweep():
    return figure7.run(trials=BENCH_TRIALS, ks=(1, 2, 3, 4), ns=BENCH_NS)


def test_bench_figure7(benchmark):
    result = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print()
    print(figure7.render(result))

    heads_by_k = [
        np.mean([result.cell(n, 6.0, k).num_heads.mean for n in BENCH_NS])
        for k in (1, 2, 3, 4)
    ]
    cds_by_k = [
        np.mean(
            [result.cell(n, 6.0, k).cds_size["AC-LMST"].mean for n in BENCH_NS]
        )
        for k in (1, 2, 3, 4)
    ]
    # Figure 7(a): larger k, fewer clusterheads.
    assert all(a > b for a, b in zip(heads_by_k, heads_by_k[1:])), heads_by_k
    # Figure 7(b): larger k, smaller CDS.
    assert all(a > b for a, b in zip(cds_by_k, cds_by_k[1:])), cds_by_k
