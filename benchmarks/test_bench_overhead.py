"""Benchmark A3 — communication overhead vs k (distributed pipeline).

The paper's §5 names the overhead/efficiency tradeoff as future work; this
bench quantifies it on the round simulator: total transmissions grow with
k while the CDS shrinks.
"""

from conftest import BENCH_TRIALS

from repro.figures import overhead


def _rows():
    return overhead.run(trials=max(1, BENCH_TRIALS // 2), ks=(1, 2, 3, 4))


def test_bench_overhead(benchmark):
    rows = benchmark.pedantic(_rows, rounds=1, iterations=1)
    print()
    print(overhead.render(rows))
    tx = [r.total_tx for r in rows]
    cds = [r.cds_size for r in rows]
    # overhead grows with k ...
    assert all(a < b for a, b in zip(tx, tx[1:])), tx
    # ... while the backbone shrinks (the tradeoff).
    assert cds[-1] < cds[0], cds
