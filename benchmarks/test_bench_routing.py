"""Benchmark A6 — cluster-based routing: table collapse vs path stretch.

The paper's §1/§2 routing motivation, quantified: routing state per node
under cluster routing vs flat link-state, and the path-stretch price, as
a function of k.
"""

import numpy as np
from conftest import BENCH_TRIALS

from repro.analysis.tables import format_table
from repro.cds.routing import routing_report
from repro.core.clustering import khop_cluster
from repro.core.pipeline import build_backbone
from repro.net.paths import PathOracle
from repro.net.topology import random_topology


def _measure(n=150, degree=8.0, ks=(1, 2, 3), trials=BENCH_TRIALS):
    rows = []
    for k in ks:
        tables, stretches = [], []
        for t in range(trials):
            topo = random_topology(n, degree, seed=7000 + 100 * k + t)
            res = build_backbone(khop_cluster(topo.graph, k), "AC-LMST")
            rep = routing_report(
                res, PathOracle(topo.graph), samples=30, seed=t
            )
            tables.append(rep.mean_table)
            stretches.append(rep.mean_stretch)
        rows.append(
            (k, float(np.mean(tables)), n - 1, float(np.mean(stretches)))
        )
    return rows


def test_bench_routing(benchmark):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["k", "cluster table", "flat table", "mean stretch"],
            [(k, f"{t:.1f}", flat, f"{s:.2f}") for k, t, flat, s in rows],
        )
    )
    for k, table, flat, stretch in rows:
        assert table < flat / 2  # the table-size collapse
        assert 1.0 <= stretch < 3.0  # bounded stretch price
    # larger clusters (bigger k) mean bigger per-node tables
    assert rows[0][1] < rows[-1][1]
