# Developer entry points.  `make test` is the tier-1 gate (what CI runs);
# `make bench-smoke` exercises the benchmark suite at a reduced trial
# budget, including the large-N scaling sweep.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench-smoke bench-scaling help

help:
	@echo "make test          - tier-1 test suite (tests/ + benchmarks/, -x -q)"
	@echo "make bench-smoke   - benchmark suite at the reduced REPRO_TRIALS budget"
	@echo "make bench-scaling - the N=200..5000 distance-oracle scaling sweep only"

test:
	$(PYTHON) -m pytest -x -q

bench-smoke:
	REPRO_TRIALS=$${REPRO_TRIALS:-2} $(PYTHON) -m pytest benchmarks -q

bench-scaling:
	REPRO_BENCH_STRICT=1 $(PYTHON) -m pytest benchmarks/test_bench_scaling.py -q
