# Developer entry points.  `make test` is the tier-1 gate (what CI runs);
# `make bench-smoke` exercises the benchmark suite at a reduced trial
# budget, including the large-N scaling sweep.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test test-all lint typecheck chaos stats serve-demo bench-smoke bench-smoke-ci bench-scaling bench-churn bench-traffic bench-pipeline bench-mobility bench-faults bench-obs bench-service bench-congestion help

help:
	@echo "make test           - tier-1 test suite (tests/ + benchmarks/, -x -q; slow cells skipped)"
	@echo "make test-all       - full suite including the slow scenario-matrix cells"
	@echo "make lint           - repro-lint static analysis (rules R001-R011; exits non-zero on findings)"
	@echo "make typecheck      - mypy strict on the typed core (net/, traffic/, core/); skipped if mypy absent"
	@echo "make chaos          - randomized fault campaign (500 events) with per-batch invariant checks"
	@echo "make stats          - instrumented quick traffic run: metrics registry + span flame summary"
	@echo "make serve-demo     - long-lived engine service demo: seeded event stream + checkpoints in ./service-demo"
	@echo "make bench-smoke    - benchmark suite at the reduced REPRO_TRIALS budget"
	@echo "make bench-smoke-ci - scaling + churn + traffic + pipeline + mobility + obs benchmarks (the CI smoke job)"
	@echo "make bench-scaling  - the full N=200..5000 distance-oracle scaling sweep"
	@echo "make bench-churn    - full churn benchmark (N=2000, 50 failures, >=3x gate)"
	@echo "make bench-traffic  - full traffic benchmark (N=2000, 10k flows, >=10x gate)"
	@echo "make bench-pipeline - full construction sweep N=2000..10000 (>=5x clustering gate at N=5000)"
	@echo "make bench-mobility - full mobility benchmark (N=2000, 20 snapshots, >=3x delta gate)"
	@echo "make bench-faults   - fault-tolerance benchmark (loss tiers + crash campaign, >=1.5x retry gate)"
	@echo "make bench-obs      - observability overhead gate (traced vs untraced quick pipeline, <=2%)"
	@echo "make bench-service  - service growth benchmark (10^3 -> 10^4 joins under traffic, >=5x vs rebuild-per-join)"
	@echo "make bench-congestion - multipath balance benchmark (N=2000, 10k flows, >=20% fairness gate + delivery pushback)"

test:
	$(PYTHON) -m pytest -x -q

test-all:
	$(PYTHON) -m pytest -x -q -m ""

lint:
	$(PYTHON) -m repro.cli lint

typecheck:
	@if $(PYTHON) -c "import mypy" 2>/dev/null; then \
		$(PYTHON) -m mypy src/repro/net src/repro/traffic src/repro/core; \
	else \
		echo "typecheck: mypy not installed; skipping (CI runs it)"; \
	fi

chaos:
	$(PYTHON) -m repro.cli chaos --seed $${SEED:-7} --events $${EVENTS:-500}

stats:
	$(PYTHON) -m repro.cli stats

serve-demo:
	$(PYTHON) -m repro.cli serve --events $${EVENTS:-200} --seed $${SEED:-7} --dir $${DIR:-service-demo}

bench-smoke:
	REPRO_TRIALS=$${REPRO_TRIALS:-2} $(PYTHON) -m pytest benchmarks -q

bench-smoke-ci:
	$(PYTHON) -m pytest benchmarks/test_bench_scaling.py benchmarks/test_bench_churn.py benchmarks/test_bench_traffic.py benchmarks/test_bench_pipeline.py benchmarks/test_bench_mobility.py benchmarks/test_bench_faults.py benchmarks/test_bench_obs.py benchmarks/test_bench_service.py benchmarks/test_bench_congestion.py -q

bench-scaling:
	REPRO_BENCH_FULL=1 REPRO_BENCH_STRICT=1 $(PYTHON) -m pytest benchmarks/test_bench_scaling.py -q

bench-churn:
	REPRO_BENCH_FULL=1 REPRO_BENCH_STRICT=1 $(PYTHON) -m pytest benchmarks/test_bench_churn.py -q

bench-traffic:
	REPRO_BENCH_FULL=1 REPRO_BENCH_STRICT=1 $(PYTHON) -m pytest benchmarks/test_bench_traffic.py -q

bench-pipeline:
	REPRO_BENCH_FULL=1 REPRO_BENCH_STRICT=1 $(PYTHON) -m pytest benchmarks/test_bench_pipeline.py -q -s

bench-mobility:
	REPRO_BENCH_FULL=1 REPRO_BENCH_STRICT=1 $(PYTHON) -m pytest benchmarks/test_bench_mobility.py -q

bench-faults:
	REPRO_BENCH_FULL=1 REPRO_BENCH_STRICT=1 $(PYTHON) -m pytest benchmarks/test_bench_faults.py -q

bench-obs:
	REPRO_BENCH_FULL=1 REPRO_BENCH_STRICT=1 $(PYTHON) -m pytest benchmarks/test_bench_obs.py -q -s

bench-service:
	REPRO_BENCH_FULL=1 REPRO_BENCH_STRICT=1 $(PYTHON) -m pytest benchmarks/test_bench_service.py -q

bench-congestion:
	REPRO_BENCH_FULL=1 REPRO_BENCH_STRICT=1 $(PYTHON) -m pytest benchmarks/test_bench_congestion.py -q
