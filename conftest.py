"""Root conftest: make ``src/`` importable without an installed package.

Lets ``pytest`` run directly from a fresh checkout (and in offline
environments where editable installs are unavailable).
"""

import sys
from pathlib import Path

_SRC = Path(__file__).parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
